"""Tests for the free-riding susceptibility model (Table III)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import freeriding as fr
from repro.errors import ModelParameterError
from repro.names import ALL_ALGORITHMS, Algorithm


@pytest.fixture
def params(capacities):
    return fr.FreeRidingParameters(capacities, alpha_bt=0.2, alpha_r=0.1,
                                   omega=0.75, pi_ir=0.05, n_colluders=4)


class TestExploitableResources:
    def test_reciprocity_and_tchain_zero(self, params):
        assert fr.exploitable_resources(Algorithm.RECIPROCITY, params) == 0.0
        assert fr.exploitable_resources(Algorithm.TCHAIN, params) == 0.0

    def test_altruism_everything(self, params):
        assert fr.exploitable_resources(Algorithm.ALTRUISM, params) == (
            pytest.approx(params.total_capacity))

    def test_bittorrent_alpha_share(self, params):
        assert fr.exploitable_resources(Algorithm.BITTORRENT, params) == (
            pytest.approx(0.2 * params.total_capacity))

    def test_reputation_alpha_share(self, params):
        assert fr.exploitable_resources(Algorithm.REPUTATION, params) == (
            pytest.approx(0.1 * params.total_capacity))

    def test_fairtorrent_omega_share(self, params):
        assert fr.exploitable_resources(Algorithm.FAIRTORRENT, params) == (
            pytest.approx(0.25 * params.total_capacity))

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=20)
    def test_fairtorrent_monotone_in_omega(self, omega):
        """Higher omega (more users owe someone) means less exposure."""
        p = fr.FreeRidingParameters([1.0] * 4, omega=omega)
        exposed = fr.exploitable_resources(Algorithm.FAIRTORRENT, p)
        assert exposed == pytest.approx((1.0 - omega) * 4.0)


class TestCollusion:
    def test_reputation_fully_gameable(self, params):
        assert fr.collusion_probability(Algorithm.REPUTATION, params) == 1.0

    def test_altruism_not_applicable(self, params):
        assert fr.collusion_probability(Algorithm.ALTRUISM, params) is None

    def test_no_third_party_channel(self, params):
        for algorithm in (Algorithm.RECIPROCITY, Algorithm.BITTORRENT,
                          Algorithm.FAIRTORRENT):
            assert fr.collusion_probability(algorithm, params) == 0.0

    def test_tchain_formula(self, params):
        m, n = params.n_colluders, params.n_users
        expected = params.pi_ir * (m - 1) * m / ((n - 1) * n)
        assert fr.collusion_probability(Algorithm.TCHAIN, params) == (
            pytest.approx(expected))

    def test_tchain_needs_two_colluders(self, capacities):
        p = fr.FreeRidingParameters(capacities, n_colluders=1)
        assert fr.collusion_probability(Algorithm.TCHAIN, p) == 0.0

    def test_tchain_probability_small(self, params):
        """The paper: pi_IR * m(m-1)/(N(N-1)) << 1."""
        assert fr.collusion_probability(Algorithm.TCHAIN, params) < 0.01


class TestTable3AndRanking:
    def test_table_covers_all(self, params):
        assert set(fr.table3(params)) == set(ALL_ALGORITHMS)

    def test_susceptibility_ranking(self, params):
        """Reciprocity/T-Chain safest; altruism most exposed."""
        ranking = fr.susceptibility_ranking(params)
        assert ranking[0] is Algorithm.RECIPROCITY
        assert ranking[1] is Algorithm.TCHAIN
        assert ranking[-1] is Algorithm.ALTRUISM
        assert ranking.index(Algorithm.REPUTATION) < ranking.index(
            Algorithm.BITTORRENT)


class TestFairTorrentBounds:
    def test_deficit_bound_grows_logarithmically(self):
        assert fr.fairtorrent_deficit_bound(100) == pytest.approx(
            math.log(100))
        assert (fr.fairtorrent_deficit_bound(10_000)
                < 2.1 * fr.fairtorrent_deficit_bound(100))

    def test_deficit_bound_rejects_tiny(self):
        with pytest.raises(ModelParameterError):
            fr.fairtorrent_deficit_bound(1)

    def test_expected_free_pieces_most_favourable(self):
        """omega = 0: m free-riders collect m/N pieces per slot."""
        assert fr.fairtorrent_expected_free_pieces(100, 20) == (
            pytest.approx(0.2))

    def test_expected_free_pieces_scales_with_omega(self):
        assert fr.fairtorrent_expected_free_pieces(100, 20, omega=0.75) == (
            pytest.approx(0.05))

    def test_expected_free_pieces_validation(self):
        with pytest.raises(ModelParameterError):
            fr.fairtorrent_expected_free_pieces(10, 11)
        with pytest.raises(ModelParameterError):
            fr.fairtorrent_expected_free_pieces(10, 2, omega=2.0)


class TestParameterValidation:
    def test_rejects_bad_fractions(self, capacities):
        with pytest.raises(ModelParameterError):
            fr.FreeRidingParameters(capacities, alpha_bt=2.0)
        with pytest.raises(ModelParameterError):
            fr.FreeRidingParameters(capacities, pi_ir=-0.1)

    def test_rejects_negative_colluders(self, capacities):
        with pytest.raises(ModelParameterError):
            fr.FreeRidingParameters(capacities, n_colluders=-1)
