"""Tests for the piece-availability model (Eqs. 4-8).

The key check is exactness: for small ``M`` we enumerate all piece-set
pairs and compare the combinatorial formulas against brute-force
probabilities.
"""

from __future__ import annotations

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import piece_availability as pa
from repro.errors import ModelParameterError


def brute_force_q(m_needer: int, m_holder: int, M: int) -> float:
    """P(needer lacks >= 1 of holder's pieces), by enumeration."""
    pieces = range(M)
    needer_sets = list(itertools.combinations(pieces, m_needer))
    holder_sets = list(itertools.combinations(pieces, m_holder))
    hits = sum(1 for ns in needer_sets for hs in holder_sets
               if set(hs) - set(ns))
    return hits / (len(needer_sets) * len(holder_sets))


def brute_force_dr(m_i: int, m_j: int, M: int) -> float:
    """P(both need something of each other), by enumeration."""
    pieces = range(M)
    i_sets = list(itertools.combinations(pieces, m_i))
    j_sets = list(itertools.combinations(pieces, m_j))
    hits = sum(1 for a in i_sets for b in j_sets
               if (set(b) - set(a)) and (set(a) - set(b)))
    return hits / (len(i_sets) * len(j_sets))


class TestNeedsPieceProbability:
    @pytest.mark.parametrize("m_i,m_j,M", [
        (0, 3, 6), (3, 0, 6), (2, 2, 5), (3, 2, 6), (2, 4, 6),
        (5, 5, 6), (6, 3, 6), (1, 1, 4),
    ])
    def test_matches_enumeration(self, m_i, m_j, M):
        assert pa.needs_piece_probability(m_i, m_j, M) == pytest.approx(
            brute_force_q(m_i, m_j, M), abs=1e-12)

    def test_holder_empty(self):
        assert pa.needs_piece_probability(3, 0, 10) == 0.0

    def test_needer_complete(self):
        assert pa.needs_piece_probability(10, 4, 10) == 0.0

    def test_pigeonhole(self):
        assert pa.needs_piece_probability(2, 5, 10) == 1.0

    def test_bounds_checking(self):
        with pytest.raises(ModelParameterError):
            pa.needs_piece_probability(11, 4, 10)
        with pytest.raises(ModelParameterError):
            pa.needs_piece_probability(4, -1, 10)
        with pytest.raises(ModelParameterError):
            pa.needs_piece_probability(1, 1, 0)

    def test_large_counts_stable(self):
        """Log-space evaluation stays finite at BitTorrent scale."""
        q = pa.needs_piece_probability(2000, 1000, 4096)
        assert 0.0 <= q <= 1.0

    @given(st.integers(1, 12), st.data())
    def test_probability_range(self, M, data):
        m_i = data.draw(st.integers(0, M))
        m_j = data.draw(st.integers(0, M))
        q = pa.needs_piece_probability(m_i, m_j, M)
        assert 0.0 <= q <= 1.0

    @given(st.integers(2, 10), st.data())
    def test_monotone_in_holder(self, M, data):
        """More pieces held means at least as likely to be needed."""
        m_i = data.draw(st.integers(0, M))
        m_j = data.draw(st.integers(0, M - 1))
        assert (pa.needs_piece_probability(m_i, m_j + 1, M)
                >= pa.needs_piece_probability(m_i, m_j, M) - 1e-12)


class TestDirectReciprocity:
    @pytest.mark.parametrize("m_i,m_j,M", [
        (2, 2, 5), (1, 3, 5), (3, 3, 6), (2, 4, 6), (1, 1, 3),
    ])
    def test_matches_enumeration(self, m_i, m_j, M):
        """Eq. 4's closed form is the *exact* joint probability,
        including the correlated equal-size case."""
        assert pa.pi_direct_reciprocity(m_i, m_j, M) == pytest.approx(
            brute_force_dr(m_i, m_j, M), abs=1e-12)

    def test_newcomer_cannot_reciprocate(self):
        """m = 0 makes direct reciprocity impossible (flash crowd)."""
        assert pa.pi_direct_reciprocity(0, 5, 10) == 0.0
        assert pa.pi_direct_reciprocity(5, 0, 10) == 0.0

    def test_symmetry(self):
        assert pa.pi_direct_reciprocity(2, 5, 8) == pytest.approx(
            pa.pi_direct_reciprocity(5, 2, 8))

    def test_equal_sets_correlated_not_squared(self):
        """For m_i == m_j the naive independent product q*q is wrong;
        the closed form equals 1 - 1/C(M, m)."""
        M, m = 6, 3
        expected = 1.0 - 1.0 / math.comb(M, m)
        assert pa.pi_direct_reciprocity(m, m, M) == pytest.approx(expected)
        q = pa.needs_piece_probability(m, m, M)
        assert q * q < expected  # the independence approximation undershoots


class TestDistributions:
    def test_uniform_sums_to_one(self):
        d = pa.PieceCountDistribution.uniform(10)
        assert sum(d.probabilities) == pytest.approx(1.0)
        assert d.mean() == pytest.approx(5.0)

    def test_uniform_without_zero(self):
        d = pa.PieceCountDistribution.uniform(4, include_zero=False)
        assert d.probabilities[0] == 0.0
        assert sum(d.probabilities) == pytest.approx(1.0)

    def test_degenerate(self):
        d = pa.PieceCountDistribution.degenerate(8, 3)
        assert d.probabilities[3] == 1.0
        assert d.mean() == 3.0

    def test_binomial_mean(self):
        d = pa.PieceCountDistribution.binomial(20, 0.3)
        assert d.mean() == pytest.approx(6.0, rel=1e-6)

    def test_binomial_extremes(self):
        assert pa.PieceCountDistribution.binomial(5, 0.0).probabilities[0] == (
            pytest.approx(1.0))
        assert pa.PieceCountDistribution.binomial(5, 1.0).probabilities[5] == (
            pytest.approx(1.0))

    def test_flash_crowd(self):
        d = pa.PieceCountDistribution.flash_crowd(10, 0.25)
        assert d.probabilities[0] == pytest.approx(0.75)
        assert d.probabilities[1] == pytest.approx(0.25)

    def test_rejects_bad_vector(self):
        with pytest.raises(ModelParameterError):
            pa.PieceCountDistribution(4, [0.5, 0.5])  # wrong length
        with pytest.raises(ModelParameterError):
            pa.PieceCountDistribution(1, [0.7, 0.7])  # doesn't sum to 1


class TestExchangeProbabilities:
    @pytest.fixture
    def mixed(self):
        return pa.PieceCountDistribution.uniform(12)

    @given(st.integers(2, 12), st.data())
    @settings(max_examples=25, deadline=None)
    def test_corollary2_altruism_dominates(self, M, data):
        """pi_A >= pi_TC >= pi_DR for every configuration."""
        m_i = data.draw(st.integers(0, M))
        m_j = data.draw(st.integers(0, M))
        n = data.draw(st.integers(3, 50))
        dist = pa.PieceCountDistribution.uniform(M)
        alt = pa.pi_altruism(m_i, m_j, M)
        tc = pa.pi_tchain(m_i, m_j, M, dist, n)
        dr = pa.pi_direct_reciprocity(m_i, m_j, M)
        q_ij = pa.needs_piece_probability(m_i, m_j, M)
        q_ji = pa.needs_piece_probability(m_j, m_i, M)
        assert alt >= tc - 1e-12
        assert tc >= q_ij * q_ji - 1e-12  # direct component lower bound
        assert 0.0 <= dr <= 1.0

    def test_tchain_approaches_altruism_large_n(self, mixed):
        """Corollary 2: pi_TC -> pi_A as N grows."""
        m_i, m_j = 4, 7
        alt = pa.pi_altruism(m_i, m_j, mixed.M)
        small = pa.pi_tchain(m_i, m_j, mixed.M, mixed, 4)
        large = pa.pi_tchain(m_i, m_j, mixed.M, mixed, 5000)
        assert large >= small
        assert large == pytest.approx(alt, rel=1e-3)

    def test_bittorrent_alpha_interpolates(self):
        """alpha = 0 is pure tit-for-tat; alpha = 1 is altruism."""
        m_i, m_j, M = 3, 8, 12
        q_ij = pa.needs_piece_probability(m_i, m_j, M)
        q_ji = pa.needs_piece_probability(m_j, m_i, M)
        assert pa.pi_bittorrent(m_i, m_j, M, 0.0) == pytest.approx(q_ij * q_ji)
        assert pa.pi_bittorrent(m_i, m_j, M, 1.0) == pytest.approx(q_ij)

    def test_bittorrent_rejects_bad_alpha(self):
        with pytest.raises(ModelParameterError):
            pa.pi_bittorrent(1, 1, 4, -0.1)

    def test_eq8_threshold(self, mixed):
        """pi_TC >= pi_BT iff alpha_BT is below the Eq. 8 bound."""
        m_i, m_j, n = 2, 9, 40
        bound = pa.tchain_dominates_bittorrent_alpha_bound(m_j, mixed, n)
        tc = pa.pi_tchain(m_i, m_j, mixed.M, mixed, n)
        below = pa.pi_bittorrent(m_i, m_j, mixed.M, bound * 0.9)
        above = pa.pi_bittorrent(m_i, m_j, mixed.M, min(1.0, bound * 1.1))
        assert tc >= below - 1e-12
        if bound < 1.0:
            assert above >= tc - 1e-9

    def test_indirect_reciprocity_needs_third_party(self):
        """With N = 2 there is no third user, so pi_IR = 0."""
        dist = pa.PieceCountDistribution.uniform(8)
        assert pa.pi_indirect_reciprocity(3, 4, 8, dist, 2) == 0.0

    def test_indirect_grows_with_n(self):
        dist = pa.PieceCountDistribution.uniform(8)
        p10 = pa.pi_indirect_reciprocity(2, 6, 8, dist, 10)
        p100 = pa.pi_indirect_reciprocity(2, 6, 8, dist, 100)
        assert p100 >= p10
