"""Tests for the Algorithm enumeration shared by both layers."""

from __future__ import annotations

import pytest

from repro.names import (
    ALL_ALGORITHMS,
    BASIC_ALGORITHMS,
    EXTENDED_ALGORITHMS,
    HYBRID_ALGORITHMS,
    Algorithm,
)


class TestTuples:
    def test_six_paper_algorithms(self):
        assert len(ALL_ALGORITHMS) == 6
        assert len(set(ALL_ALGORITHMS)) == 6

    def test_basic_plus_hybrid_is_all(self):
        assert set(BASIC_ALGORITHMS) | set(HYBRID_ALGORITHMS) == set(
            ALL_ALGORITHMS)
        assert not set(BASIC_ALGORITHMS) & set(HYBRID_ALGORITHMS)

    def test_extended_superset(self):
        assert set(ALL_ALGORITHMS) < set(EXTENDED_ALGORITHMS)
        assert Algorithm.PROPSHARE in EXTENDED_ALGORITHMS

    def test_table_row_order(self):
        """ALL_ALGORITHMS follows the paper's table row order."""
        assert ALL_ALGORITHMS[0] is Algorithm.RECIPROCITY
        assert ALL_ALGORITHMS[-1] is Algorithm.ALTRUISM


class TestParse:
    @pytest.mark.parametrize("algorithm", EXTENDED_ALGORITHMS)
    def test_roundtrip_value(self, algorithm):
        assert Algorithm.parse(algorithm.value) is algorithm

    @pytest.mark.parametrize("algorithm", EXTENDED_ALGORITHMS)
    def test_roundtrip_display_name(self, algorithm):
        assert Algorithm.parse(algorithm.display_name) is algorithm

    def test_whitespace_and_case(self):
        assert Algorithm.parse("  T-CHAIN ") is Algorithm.TCHAIN

    def test_identity(self):
        assert Algorithm.parse(Algorithm.RECIPROCITY) is Algorithm.RECIPROCITY

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            Algorithm.parse("napster")

    def test_is_str_enum(self):
        """Algorithm doubles as its string value (dict keys, JSON)."""
        assert Algorithm.TCHAIN == "tchain"
        assert isinstance(Algorithm.TCHAIN, str)
