"""Monte Carlo cross-verification of the Eq. 4-7 probabilities.

Independent evidence that the combinatorial formulas are right: draw
many uniformly random piece-set pairs, measure the event frequencies
directly, and compare against the closed forms within sampling error.
(The enumeration tests in ``test_piece_availability.py`` are exact but
only feasible for tiny M; these sampling checks run at realistic M.)
"""

from __future__ import annotations

import random

import pytest

from repro.core import piece_availability as pa

SAMPLES = 4000
#: Three-sigma bound for a Bernoulli mean over SAMPLES draws.
TOL = 3.0 * (0.25 / SAMPLES) ** 0.5


def sample_sets(rng, M, m_i, m_j):
    pieces = range(M)
    return (set(rng.sample(pieces, m_i)), set(rng.sample(pieces, m_j)))


@pytest.mark.parametrize("M,m_i,m_j", [
    (32, 8, 20), (32, 20, 8), (32, 16, 16), (64, 5, 50), (64, 60, 60),
])
def test_needs_probability_matches_sampling(M, m_i, m_j):
    rng = random.Random(1234 + M + m_i * 7 + m_j)
    hits = 0
    for _ in range(SAMPLES):
        set_i, set_j = sample_sets(rng, M, m_i, m_j)
        if set_j - set_i:
            hits += 1
    empirical = hits / SAMPLES
    assert pa.needs_piece_probability(m_i, m_j, M) == pytest.approx(
        empirical, abs=TOL)


@pytest.mark.parametrize("M,m_i,m_j", [
    (32, 8, 20), (32, 16, 16), (64, 30, 34), (24, 12, 12),
])
def test_direct_reciprocity_matches_sampling(M, m_i, m_j):
    rng = random.Random(99 + M * 3 + m_i + m_j)
    hits = 0
    for _ in range(SAMPLES):
        set_i, set_j = sample_sets(rng, M, m_i, m_j)
        if (set_j - set_i) and (set_i - set_j):
            hits += 1
    empirical = hits / SAMPLES
    assert pa.pi_direct_reciprocity(m_i, m_j, M) == pytest.approx(
        empirical, abs=TOL)


def test_equal_sizes_correlation_visible_in_sampling():
    """The sampling data itself shows why Eq. 4's closed form (not the
    independent product) is correct at m_i == m_j."""
    M, m = 16, 8
    rng = random.Random(7)
    joint_hits = 0
    for _ in range(SAMPLES):
        set_i, set_j = sample_sets(rng, M, m, m)
        if (set_j - set_i) and (set_i - set_j):
            joint_hits += 1
    joint = joint_hits / SAMPLES
    q = pa.needs_piece_probability(m, m, M)
    closed_form = pa.pi_direct_reciprocity(m, m, M)
    assert joint == pytest.approx(closed_form, abs=TOL)
    # The independent product undershoots measurably only when C(M, m)
    # is small; here it is within noise, so assert the ordering only.
    assert q * q <= closed_form + TOL


def test_bittorrent_probability_matches_sampling():
    """pi_BT: mutual interest for tit-for-tat, one-sided for optimism."""
    M, m_i, m_j, alpha = 32, 10, 22, 0.3
    rng = random.Random(41)
    hits = 0
    for _ in range(SAMPLES):
        set_i, set_j = sample_sets(rng, M, m_i, m_j)
        i_needs = bool(set_j - set_i)
        j_needs = bool(set_i - set_j)
        # Exchange feasible if i needs something AND (mutual interest
        # for the reciprocal share, or the optimistic coin fires).
        if i_needs and (j_needs or rng.random() < alpha):
            hits += 1
    empirical = hits / SAMPLES
    assert pa.pi_bittorrent(m_i, m_j, M, alpha) == pytest.approx(
        empirical, abs=2 * TOL)
