"""Tests for the fairness-efficiency tradeoff helpers (Figs. 2-3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import metrics, piece_availability as pa, tradeoff
from repro.errors import ModelParameterError
from repro.names import Algorithm


class TestFigure2Rankings:
    def test_efficiency_order(self, eq_params):
        order = tradeoff.figure2_efficiency_ranking(eq_params)
        assert order[0] is Algorithm.ALTRUISM
        assert order[-1] is Algorithm.RECIPROCITY
        # BitTorrent and reputation beat the perfectly fair hybrids.
        for fast in (Algorithm.BITTORRENT, Algorithm.REPUTATION):
            for slow in (Algorithm.TCHAIN, Algorithm.FAIRTORRENT):
                assert order.index(fast) < order.index(slow)

    def test_fairness_order(self, eq_params):
        order = tradeoff.figure2_fairness_ranking(eq_params)
        # The two optimally fair hybrids lead; reciprocity (undefined
        # fairness) is last; altruism is the least fair defined one.
        assert set(order[:2]) == {Algorithm.TCHAIN, Algorithm.FAIRTORRENT}
        assert order[-1] is Algorithm.RECIPROCITY
        assert order[-2] is Algorithm.ALTRUISM


class TestFigure3Ranking:
    def test_paper_order_under_mixed_progress(self):
        dist = pa.PieceCountDistribution.uniform(48)
        order = tradeoff.figure3_efficiency_ranking(dist, n_users=200)
        assert order == [Algorithm.ALTRUISM, Algorithm.TCHAIN,
                         Algorithm.FAIRTORRENT, Algorithm.BITTORRENT,
                         Algorithm.RECIPROCITY]

    def test_reciprocity_probability_zero(self):
        dist = pa.PieceCountDistribution.uniform(16)
        assert tradeoff.mean_exchange_probability(
            Algorithm.RECIPROCITY, dist, 50) == 0.0

    def test_mean_probability_bounds(self):
        dist = pa.PieceCountDistribution.uniform(16)
        for algorithm in (Algorithm.ALTRUISM, Algorithm.TCHAIN,
                          Algorithm.BITTORRENT, Algorithm.FAIRTORRENT):
            p = tradeoff.mean_exchange_probability(algorithm, dist, 50)
            assert 0.0 <= p <= 1.0

    def test_altruism_upper_bounds_all(self):
        dist = pa.PieceCountDistribution.uniform(16)
        alt = tradeoff.mean_exchange_probability(Algorithm.ALTRUISM, dist, 50)
        for algorithm in (Algorithm.TCHAIN, Algorithm.BITTORRENT):
            assert alt >= tradeoff.mean_exchange_probability(
                algorithm, dist, 50) - 1e-12

    def test_tchain_improves_with_swarm_size(self):
        dist = pa.PieceCountDistribution.uniform(16)
        small = tradeoff.mean_exchange_probability(Algorithm.TCHAIN, dist, 5)
        large = tradeoff.mean_exchange_probability(Algorithm.TCHAIN, dist, 500)
        assert large >= small


class TestFrontier:
    def test_endpoints(self, capacities):
        rows = tradeoff.fairness_efficiency_frontier(capacities, [0.0, 1.0])
        fair_end, efficient_end = rows
        assert fair_end["fairness"] == pytest.approx(0.0)
        assert efficient_end["efficiency"] == pytest.approx(
            metrics.optimal_efficiency(capacities))

    def test_monotone_tradeoff(self, capacities):
        """Moving toward the efficient end monotonically trades
        fairness for download time (Lemma 1 made quantitative)."""
        thetas = np.linspace(0.0, 1.0, 11)
        rows = tradeoff.fairness_efficiency_frontier(capacities, thetas)
        fairness = [r["fairness"] for r in rows]
        efficiency = [r["efficiency"] for r in rows]
        assert all(a <= b + 1e-12 for a, b in zip(fairness, fairness[1:]))
        assert all(a >= b - 1e-12 for a, b in zip(efficiency, efficiency[1:]))

    def test_rejects_bad_theta(self, capacities):
        with pytest.raises(ModelParameterError):
            tradeoff.fairness_efficiency_frontier(capacities, [1.5])


class TestRobinHood:
    def test_transfer_improves_efficiency(self):
        rates = [4.0, 1.0]
        moved = tradeoff.robin_hood_transfer(rates, 1.0, rich=0, poor=1)
        assert metrics.efficiency(moved) < metrics.efficiency(rates)

    def test_rejects_overshoot(self):
        with pytest.raises(ModelParameterError):
            tradeoff.robin_hood_transfer([4.0, 1.0], 2.0, rich=0, poor=1)

    def test_rejects_regressive(self):
        with pytest.raises(ModelParameterError):
            tradeoff.robin_hood_transfer([1.0, 4.0], 0.5, rich=0, poor=1)

    def test_rejects_same_index(self):
        with pytest.raises(ModelParameterError):
            tradeoff.robin_hood_transfer([1.0, 4.0], 0.5, rich=1, poor=1)

    @given(st.lists(st.floats(min_value=0.5, max_value=20.0), min_size=2,
                    max_size=10), st.data())
    @settings(max_examples=40)
    def test_any_progressive_transfer_weakly_improves(self, rates, data):
        """The Schur-concavity argument behind Corollary 1's proof."""
        idx = np.argsort(rates)
        rich, poor = int(idx[-1]), int(idx[0])
        if rates[rich] == rates[poor]:
            return
        amount = data.draw(st.floats(
            min_value=0.0, max_value=(rates[rich] - rates[poor]) / 2))
        moved = tradeoff.robin_hood_transfer(rates, amount, rich, poor)
        assert metrics.efficiency(moved) <= metrics.efficiency(rates) + 1e-12
