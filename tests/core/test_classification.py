"""Tests for the Figure 1 design-space classification."""

from __future__ import annotations

import pytest

from repro.core import classification as cl
from repro.names import ALL_ALGORITHMS, Algorithm


class TestProfiles:
    def test_every_algorithm_profiled(self):
        # PROFILES covers the paper's six plus shipped extensions.
        assert set(ALL_ALGORITHMS).issubset(cl.PROFILES)
        assert Algorithm.PROPSHARE in cl.PROFILES

    def test_pure_algorithms_single_class(self):
        for algorithm in (Algorithm.RECIPROCITY, Algorithm.ALTRUISM,
                          Algorithm.REPUTATION):
            assert len(cl.components(algorithm)) == 1
            assert not cl.is_hybrid(algorithm)

    def test_hybrids_two_classes(self):
        for algorithm in (Algorithm.BITTORRENT, Algorithm.FAIRTORRENT,
                          Algorithm.TCHAIN):
            assert len(cl.components(algorithm)) == 2
            assert cl.is_hybrid(algorithm)

    def test_bittorrent_is_reciprocity_altruism(self):
        assert cl.components(Algorithm.BITTORRENT) == frozenset(
            {cl.ExchangeClass.RECIPROCITY, cl.ExchangeClass.ALTRUISM})

    def test_fairtorrent_is_reputation_altruism(self):
        assert cl.components(Algorithm.FAIRTORRENT) == frozenset(
            {cl.ExchangeClass.REPUTATION, cl.ExchangeClass.ALTRUISM})

    def test_tchain_is_reciprocity_reputation(self):
        assert cl.components(Algorithm.TCHAIN) == frozenset(
            {cl.ExchangeClass.RECIPROCITY, cl.ExchangeClass.REPUTATION})

    def test_each_class_has_two_hybrids(self):
        """Figure 1's triangle: every basic class borders two hybrids."""
        for exchange_class in cl.ExchangeClass:
            assert len(cl.hybrids_of(exchange_class)) == 2


class TestExpectations:
    def test_altruism_best_efficiency_and_bootstrapping(self):
        assert cl.expected_ranking(cl.Metric.EFFICIENCY)[0] is (
            Algorithm.ALTRUISM)
        # Fig. 4c: altruism and FairTorrent are the fastest bootstrappers.
        assert set(cl.expected_ranking(cl.Metric.BOOTSTRAPPING)[:2]) == {
            Algorithm.ALTRUISM, Algorithm.FAIRTORRENT}

    def test_reciprocity_worst_efficiency(self):
        assert cl.expected_ranking(cl.Metric.EFFICIENCY)[-1] is (
            Algorithm.RECIPROCITY)

    def test_altruism_least_fair_and_most_exploitable(self):
        assert cl.expected_ranking(cl.Metric.FAIRNESS)[-1] is (
            Algorithm.ALTRUISM)
        assert cl.expected_ranking(
            cl.Metric.FREERIDING_RESISTANCE)[-1] is Algorithm.ALTRUISM

    def test_zero_tolerance_mechanisms_top_freeriding(self):
        top2 = set(cl.expected_ranking(cl.Metric.FREERIDING_RESISTANCE)[:2])
        assert top2 == {Algorithm.RECIPROCITY, Algorithm.TCHAIN}

    def test_rankings_are_permutations(self):
        for metric in cl.Metric:
            ranking = cl.expected_ranking(metric)
            assert sorted(ranking, key=lambda a: a.value) == sorted(
                ALL_ALGORITHMS, key=lambda a: a.value)

    def test_scores_ordinal_range(self):
        for profile in cl.PROFILES.values():
            for score in profile.expectations.values():
                assert 1 <= score <= 5


class TestAlgorithmParsing:
    @pytest.mark.parametrize("name,expected", [
        ("T-Chain", Algorithm.TCHAIN),
        ("tchain", Algorithm.TCHAIN),
        ("BitTorrent", Algorithm.BITTORRENT),
        ("FAIRTORRENT", Algorithm.FAIRTORRENT),
        ("fair_torrent", Algorithm.FAIRTORRENT),
        (Algorithm.ALTRUISM, Algorithm.ALTRUISM),
    ])
    def test_parse(self, name, expected):
        assert Algorithm.parse(name) is expected

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            Algorithm.parse("gnutella")

    def test_display_names(self):
        assert Algorithm.TCHAIN.display_name == "T-Chain"
        assert Algorithm.BITTORRENT.display_name == "BitTorrent"
