"""Tests for the Table I equilibrium model and Corollary 1."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import equilibrium as eq
from repro.core import metrics
from repro.errors import ModelParameterError
from repro.names import ALL_ALGORITHMS, Algorithm

cap_lists = st.lists(st.floats(min_value=0.1, max_value=50.0),
                     min_size=4, max_size=24)


class TestParameters:
    def test_capacities_sorted(self):
        p = eq.EquilibriumParameters([1.0, 3.0, 2.0])
        assert list(p.capacities) == [3.0, 2.0, 1.0]

    def test_rejects_bad_alpha(self):
        with pytest.raises(ModelParameterError):
            eq.EquilibriumParameters([1.0, 1.0], alpha_bt=1.5)

    def test_rejects_bad_nbt(self):
        with pytest.raises(ModelParameterError):
            eq.EquilibriumParameters([1.0, 1.0], n_bt=0)

    def test_rejects_negative_seeder(self):
        with pytest.raises(ModelParameterError):
            eq.EquilibriumParameters([1.0, 1.0], seeder_rate=-1.0)


class TestLemma2Uploads:
    """Everyone uploads at capacity except reciprocity (Lemma 2)."""

    @pytest.mark.parametrize("algorithm", [a for a in ALL_ALGORITHMS
                                           if a is not Algorithm.RECIPROCITY])
    def test_full_utilisation(self, eq_params, algorithm):
        u = eq.upload_rates(algorithm, eq_params)
        assert np.allclose(u, eq_params.capacity_array())

    def test_reciprocity_uploads_nothing(self, eq_params):
        assert np.all(eq.upload_rates(Algorithm.RECIPROCITY, eq_params) == 0)


class TestTable1Rows:
    def test_reciprocity_zero_utilisation(self, eq_params):
        assert np.all(eq.reciprocity_download_utilization(eq_params) == 0)

    def test_tchain_equals_capacity(self, eq_params):
        assert np.allclose(eq.tchain_download_utilization(eq_params),
                           eq_params.capacity_array())

    def test_fairtorrent_equals_capacity(self, eq_params):
        assert np.allclose(eq.fairtorrent_download_utilization(eq_params),
                           eq_params.capacity_array())

    def test_altruism_row_formula(self):
        p = eq.EquilibriumParameters([4.0, 2.0, 1.0, 1.0])
        d = eq.altruism_download_utilization(p)
        # d_i = (sum U - U_i) / (N - 1) with U sorted descending.
        assert d[0] == pytest.approx((8.0 - 4.0) / 3)
        assert d[3] == pytest.approx((8.0 - 1.0) / 3)

    def test_altruism_needs_two_users(self):
        p = eq.EquilibriumParameters([1.0])
        with pytest.raises(ModelParameterError):
            eq.altruism_download_utilization(p)

    def test_bittorrent_homogeneous_reduces_to_capacity(self):
        """With equal capacities the BT row collapses to U_i (all terms
        equal the common capacity)."""
        p = eq.EquilibriumParameters([2.0] * 8, alpha_bt=0.2, n_bt=4)
        d = eq.bittorrent_download_utilization(p)
        assert np.allclose(d, 2.0)

    def test_bittorrent_group_structure(self):
        """Users in the same capacity block share the same tit-for-tat
        term; alpha mixes in the altruism share."""
        p = eq.EquilibriumParameters([4.0, 4.0, 1.0, 1.0],
                                     alpha_bt=0.0, n_bt=2)
        d = eq.bittorrent_download_utilization(p)
        assert d[0] == pytest.approx(d[1]) == pytest.approx(4.0)
        assert d[2] == pytest.approx(d[3]) == pytest.approx(1.0)

    def test_bittorrent_alpha_one_is_altruism(self, eq_params):
        p = eq.EquilibriumParameters(eq_params.capacities, alpha_bt=1.0)
        assert np.allclose(eq.bittorrent_download_utilization(p),
                           eq.altruism_download_utilization(p))

    def test_reputation_homogeneous_close_to_capacity(self):
        """With equal capacities, reputation-weighted exchange gives
        everyone (approximately) its own capacity back."""
        p = eq.EquilibriumParameters([2.0] * 20, alpha_r=0.0)
        d = eq.reputation_download_utilization(p)
        assert np.allclose(d, 2.0, rtol=1e-9)

    def test_reputation_alpha_one_is_altruism(self, eq_params):
        p = eq.EquilibriumParameters(eq_params.capacities, alpha_r=1.0)
        assert np.allclose(eq.reputation_download_utilization(p),
                           eq.altruism_download_utilization(p))

    @given(cap_lists)
    def test_conservation_of_bandwidth(self, caps):
        """Total download utilisation equals total upload (Eq. 1 with
        u_S = 0) for the perfectly reciprocal rows."""
        p = eq.EquilibriumParameters(caps)
        for algorithm in (Algorithm.TCHAIN, Algorithm.FAIRTORRENT,
                          Algorithm.ALTRUISM):
            d = eq.download_utilization(algorithm, p)
            assert float(np.sum(d)) == pytest.approx(float(np.sum(
                p.capacity_array())), rel=1e-9)


class TestEquilibriumResults:
    def test_seeder_share_added(self, capacities):
        p = eq.EquilibriumParameters(capacities, seeder_rate=10.0)
        result = eq.equilibrium(Algorithm.ALTRUISM, p)
        base = eq.altruism_download_utilization(p)
        assert np.allclose(result.download_rates, base + 10.0 / len(capacities))

    def test_reciprocity_infinite_download_time(self, eq_params):
        result = eq.equilibrium(Algorithm.RECIPROCITY, eq_params)
        assert result.efficiency == math.inf

    def test_table1_covers_all_algorithms(self, eq_params):
        table = eq.table1(eq_params)
        assert set(table) == set(ALL_ALGORITHMS)

    def test_accepts_string_names(self, eq_params):
        result = eq.equilibrium("T-Chain", eq_params)
        assert result.algorithm is Algorithm.TCHAIN


class TestCorollary1:
    def test_only_tchain_and_fairtorrent_optimally_fair(self, eq_params):
        fair = eq.corollary1_fair_algorithms(eq_params)
        assert set(fair) == {Algorithm.TCHAIN, Algorithm.FAIRTORRENT}

    def test_altruism_most_efficient(self, eq_params):
        ranking = eq.corollary1_efficiency_ranking(eq_params)
        assert ranking[0] is Algorithm.ALTRUISM
        assert ranking[-1] is Algorithm.RECIPROCITY

    def test_bt_and_reputation_beat_tchain_fairtorrent(self, eq_params):
        """Corollary 1: BitTorrent and reputation are more efficient
        than T-Chain/FairTorrent in the idealized scenario."""
        table = eq.table1(eq_params)
        for fast in (Algorithm.BITTORRENT, Algorithm.REPUTATION):
            for slow in (Algorithm.TCHAIN, Algorithm.FAIRTORRENT):
                assert table[fast].efficiency < table[slow].efficiency

    @given(cap_lists)
    def test_no_algorithm_beats_lemma1_optimum(self, caps):
        p = eq.EquilibriumParameters(caps)
        optimum = metrics.optimal_efficiency(p.capacity_array())
        for algorithm in ALL_ALGORITHMS:
            result = eq.equilibrium(algorithm, p)
            assert result.efficiency >= optimum - 1e-9
