"""Unit and property tests for fairness/efficiency metrics (Eqs. 1-3)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import metrics
from repro.errors import ModelParameterError

rates = st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1,
                 max_size=30)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ModelParameterError):
            metrics.validate_rates([])

    def test_rejects_negative(self):
        with pytest.raises(ModelParameterError):
            metrics.validate_rates([1.0, -0.5])

    def test_rejects_nan_and_inf(self):
        for bad in (math.nan, math.inf):
            with pytest.raises(ModelParameterError):
                metrics.validate_rates([1.0, bad])

    def test_rejects_2d(self):
        with pytest.raises(ModelParameterError):
            metrics.validate_rates(np.ones((2, 2)))

    def test_strictly_positive_rejects_zero(self):
        with pytest.raises(ModelParameterError):
            metrics.validate_rates([1.0, 0.0], strictly_positive=True)

    def test_capacities_sorted_descending(self):
        caps = metrics.validate_capacities([1.0, 5.0, 3.0])
        assert list(caps) == [5.0, 3.0, 1.0]

    def test_capacity_balance_enforced(self):
        # U_1 = 10 > 1 + 1: one user holds most of the capacity.
        with pytest.raises(ModelParameterError):
            metrics.validate_capacities([10.0, 1.0, 1.0],
                                        enforce_balance=True)

    def test_capacity_balance_ok(self):
        caps = metrics.validate_capacities([2.0, 1.0, 1.5],
                                           enforce_balance=True)
        assert caps[0] == 2.0


class TestEfficiency:
    def test_equal_rates(self):
        # d_i = 2 for 4 users -> E = mean(1/d) = 0.5.
        assert metrics.efficiency([2.0, 2.0, 2.0, 2.0]) == pytest.approx(0.5)

    def test_zero_rate_gives_infinite_time(self):
        assert metrics.efficiency([1.0, 0.0]) == math.inf

    def test_matches_hand_computation(self):
        # E = (1/3)(1/1 + 1/2 + 1/4) = 7/12.
        assert metrics.efficiency([1.0, 2.0, 4.0]) == pytest.approx(7 / 12)

    def test_average_download_time_scales_with_file(self):
        e = metrics.efficiency([1.0, 2.0])
        assert metrics.average_download_time([1.0, 2.0], 10.0) == (
            pytest.approx(10.0 * e))

    def test_average_download_time_rejects_bad_size(self):
        with pytest.raises(ModelParameterError):
            metrics.average_download_time([1.0], 0.0)

    @given(rates)
    def test_optimal_is_lower_bound(self, d):
        """Lemma 1: equal rates minimise E for a fixed rate budget."""
        total = sum(d)
        equal = [total / len(d)] * len(d)
        assert metrics.efficiency(equal) <= metrics.efficiency(d) + 1e-12


class TestFairness:
    def test_perfectly_fair(self):
        assert metrics.fairness([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        # |log 2| averaged over two users, one at ratio 2, one at 1/2.
        f = metrics.fairness([2.0, 1.0], [1.0, 2.0])
        assert f == pytest.approx(math.log(2.0))

    def test_pure_consumer_is_infinitely_unfair(self):
        assert metrics.fairness([1.0, 1.0], [1.0, 0.0]) == math.inf

    def test_both_zero_counts_as_fair(self):
        assert metrics.fairness([0.0, 1.0], [0.0, 1.0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ModelParameterError):
            metrics.fairness([1.0], [1.0, 2.0])

    @given(rates)
    def test_zero_iff_equal(self, u):
        assert metrics.fairness(u, u) == pytest.approx(0.0)

    @given(rates, st.floats(min_value=0.1, max_value=10.0))
    def test_scale_invariance(self, u, c):
        """F depends only on the ratios d_i/u_i."""
        d = [c * x for x in u]
        expected = abs(math.log(c))
        assert metrics.fairness(d, u) == pytest.approx(expected, rel=1e-9)

    @given(rates)
    def test_symmetry(self, u):
        """Swapping numerator/denominator leaves |log| unchanged."""
        d = [x * 2 for x in u]
        assert metrics.fairness(d, u) == pytest.approx(metrics.fairness(u, d))


class TestPerUserFairness:
    def test_ratios(self):
        out = metrics.per_user_fairness([4.0, 1.0], [2.0, 2.0])
        assert list(out) == [2.0, 0.5]

    def test_consumer_infinite(self):
        out = metrics.per_user_fairness([1.0], [0.0])
        assert out[0] == math.inf

    def test_idle_user_ratio_one(self):
        out = metrics.per_user_fairness([0.0], [0.0])
        assert out[0] == 1.0


class TestAverageFairness:
    def test_fair_system_is_one(self):
        assert metrics.average_fairness([1.0, 2.0], [1.0, 2.0]) == (
            pytest.approx(1.0))

    def test_experimental_statistic(self):
        # mean(u/d) = mean(2/4, 2/1) = 1.25.
        assert metrics.average_fairness([4.0, 1.0], [2.0, 2.0]) == (
            pytest.approx(1.25))

    def test_pure_producer_infinite(self):
        assert metrics.average_fairness([0.0], [1.0]) == math.inf

    def test_idle_user_counts_one(self):
        assert metrics.average_fairness([0.0, 2.0], [0.0, 2.0]) == (
            pytest.approx(1.0))


class TestJainIndex:
    def test_equal_allocation(self):
        assert metrics.jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_winner(self):
        assert metrics.jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert metrics.jain_index([0.0, 0.0]) == 1.0

    @given(rates)
    def test_bounds(self, x):
        j = metrics.jain_index(x)
        assert 1.0 / len(x) - 1e-12 <= j <= 1.0 + 1e-12


class TestOptimal:
    def test_optimal_rates_equalised(self, capacities):
        d = metrics.optimal_download_rates(capacities, seeder_rate=2.0)
        expected = (sum(capacities) + 2.0) / len(capacities)
        assert np.allclose(d, expected)

    def test_optimal_efficiency_value(self):
        # Four users of capacity 2 -> d* = 2, E* = 0.5.
        assert metrics.optimal_efficiency([2.0] * 4) == pytest.approx(0.5)

    def test_negative_seeder_rejected(self):
        with pytest.raises(ModelParameterError):
            metrics.optimal_download_rates([1.0], seeder_rate=-1.0)

    @given(rates)
    def test_no_feasible_allocation_beats_optimum(self, caps):
        """Any split of the same total bandwidth has E >= E*."""
        rng = np.random.default_rng(0)
        total = sum(caps)
        weights = rng.random(len(caps)) + 0.01
        d = weights / weights.sum() * total
        assert metrics.optimal_efficiency(caps) <= (
            metrics.efficiency(d) + 1e-12)


class TestConservation:
    def test_holds(self):
        assert metrics.check_conservation([1.0, 2.0], [2.0, 2.0],
                                          seeder_rate=1.0)

    def test_violated(self):
        assert not metrics.check_conservation([1.0, 1.0], [5.0, 5.0])

    def test_is_perfectly_fair(self):
        assert metrics.is_perfectly_fair([1.0, 2.0], [1.0, 2.0])
        assert not metrics.is_perfectly_fair([1.0, 2.0], [1.0, 2.1])


class TestAlphaFairness:
    def test_alpha_two_is_negative_reciprocal_sum(self):
        """Corollary 1's proof device: alpha = 2 utility = -sum 1/x."""
        rates = [1.0, 2.0, 4.0]
        utility = metrics.alpha_fair_utility(rates, alpha=2.0)
        assert utility == pytest.approx(-(1 + 0.5 + 0.25))

    def test_alpha_one_is_log_sum(self):
        assert metrics.alpha_fair_utility([1.0, math.e], 1.0) == (
            pytest.approx(1.0))

    def test_alpha_zero_is_throughput(self):
        assert metrics.alpha_fair_utility([1.0, 2.0, 3.0], 0.0) == (
            pytest.approx(6.0))

    def test_maximised_by_equal_rates_at_alpha_two(self):
        """Equalising a fixed budget maximises the alpha=2 utility —
        the same statement as Lemma 1's efficiency optimum."""
        unequal = [1.0, 3.0]
        equal = [2.0, 2.0]
        assert (metrics.alpha_fair_utility(equal, 2.0)
                > metrics.alpha_fair_utility(unequal, 2.0))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ModelParameterError):
            metrics.alpha_fair_utility([0.0, 1.0], 2.0)
        with pytest.raises(ModelParameterError):
            metrics.alpha_fair_utility([1.0], -1.0)
