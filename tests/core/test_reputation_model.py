"""Tests for the Proposition 3 reputation-equilibrium model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import metrics, reputation_model as rm
from repro.errors import ModelParameterError

vectors = st.lists(st.floats(min_value=0.1, max_value=20.0),
                   min_size=3, max_size=15)


class TestDownloadRates:
    def test_conservation(self):
        """Everything uploaded is downloaded by someone (Eq. 1)."""
        caps = [4.0, 2.0, 1.0]
        reps = [0.5, 0.3, 0.2]
        d = rm.reputation_download_rates(caps, reps)
        assert float(np.sum(d)) == pytest.approx(sum(caps))

    def test_proportional_reputations_return_capacity(self):
        """With r_i ~ U_i every user gets its capacity back (Table I).

        The Table I row relies on ``sum_k r_k >> r_i``, so the identity
        is asymptotic: use a large population.
        """
        caps = np.array([4.0, 2.0, 2.0, 1.0, 1.0, 1.0] * 30)
        reps = rm.capacity_proportional_reputations(caps)
        d = rm.reputation_download_rates(caps, reps)
        assert np.allclose(d, caps, rtol=0.02)

    def test_zero_reputation_user_starves(self):
        caps = [2.0, 2.0, 2.0]
        reps = [1e-9, 1.0, 1.0]
        d = rm.reputation_download_rates(caps, reps)
        assert d[0] < 1e-6

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelParameterError):
            rm.reputation_download_rates([1.0, 2.0], [1.0])

    def test_needs_two_users(self):
        with pytest.raises(ModelParameterError):
            rm.reputation_download_rates([1.0], [1.0])


class TestFairnessAndEfficiency:
    def test_proportional_reputations_perfectly_fair(self):
        caps = [5.0, 3.0, 2.0, 1.0]
        reps = rm.capacity_proportional_reputations(caps)
        assert rm.reputation_fairness(caps, reps) == pytest.approx(0.0)

    def test_skew_hurts_fairness(self):
        caps = [4.0, 2.0, 2.0, 1.0]
        fair = rm.capacity_proportional_reputations(caps)
        skewed = [0.05, 0.45, 0.30, 0.20]
        assert (rm.reputation_fairness(caps, skewed)
                > rm.reputation_fairness(caps, fair))

    def test_unnormalized_option(self):
        caps = [4.0, 1.0]
        reps = [0.5, 0.5]
        total = rm.reputation_fairness(caps, reps, normalize=False)
        mean = rm.reputation_fairness(caps, reps, normalize=True)
        assert total == pytest.approx(mean * len(caps))

    def test_efficiency_diverges_with_starved_user(self):
        caps = [2.0, 2.0, 2.0]
        assert (rm.reputation_efficiency(caps, [1e-6, 1.0, 1.0])
                > rm.reputation_efficiency(caps, [1.0, 1.0, 1.0]) * 100)

    def test_proportional_efficiency_matches_table1(self):
        """With r ~ U the system behaves like d_i = U_i."""
        caps = [4.0, 2.0, 1.0, 1.0]
        reps = rm.capacity_proportional_reputations(caps)
        assert rm.reputation_efficiency(caps, reps) == pytest.approx(
            metrics.efficiency(caps))

    @given(vectors)
    @settings(max_examples=30)
    def test_fairness_nonnegative(self, caps):
        reps = [1.0] * len(caps)
        assert rm.reputation_fairness(caps, reps) >= 0.0

    @given(vectors)
    @settings(max_examples=30)
    def test_equal_reputations_equalize_downloads(self, caps):
        """Uniform reputations make download rates equal — altruism in
        disguise — so efficiency matches the Lemma 1 optimum."""
        reps = [1.0] * len(caps)
        assert rm.reputation_efficiency(caps, reps) == pytest.approx(
            metrics.optimal_efficiency(caps), rel=1e-9)


class TestEquilibriumBundle:
    def test_bundle_consistency(self):
        caps = [3.0, 2.0, 1.0]
        reps = [0.3, 0.4, 0.3]
        bundle = rm.reputation_equilibrium(caps, reps)
        assert bundle.fairness == pytest.approx(
            rm.reputation_fairness(caps, reps))
        assert bundle.efficiency == pytest.approx(
            rm.reputation_efficiency(caps, reps))
        assert bundle.download_rates.shape == (3,)

    def test_rejects_zero_reputation(self):
        with pytest.raises(ModelParameterError):
            rm.reputation_equilibrium([1.0, 1.0], [0.0, 1.0])
