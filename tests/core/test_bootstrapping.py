"""Tests for the bootstrapping model (Lemma 3, Table II, Prop. 4)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bootstrapping as boot
from repro.errors import ModelParameterError
from repro.names import ALL_ALGORITHMS, Algorithm


@pytest.fixture
def paper_params():
    """The exact example column of Table II."""
    return boot.BootstrapParameters(
        n_users=1000, n_seeder=1, pieces_per_slot=5, bootstrapped=500,
        pi_dr=0.5, n_bt=4, omega=0.75, n_ft=500)


class TestTable2PaperColumn:
    """The sample probabilities printed in Table II, to 0.1%."""

    @pytest.mark.parametrize("algorithm,expected_percent", [
        (Algorithm.RECIPROCITY, 0.1),
        (Algorithm.TCHAIN, 71.4),
        (Algorithm.BITTORRENT, 39.6),
        (Algorithm.FAIRTORRENT, 71.4),
        (Algorithm.REPUTATION, 22.2),
        (Algorithm.ALTRUISM, 91.8),
    ])
    def test_sample_value(self, paper_params, algorithm, expected_percent):
        p = boot.bootstrap_probability(algorithm, paper_params)
        assert 100.0 * p == pytest.approx(expected_percent, abs=0.15)

    def test_table2_returns_all(self, paper_params):
        assert set(boot.table2(paper_params)) == set(ALL_ALGORITHMS)


class TestParameterValidation:
    def test_rejects_tiny_swarm(self):
        with pytest.raises(ModelParameterError):
            boot.BootstrapParameters(n_users=2)

    def test_rejects_bad_probability(self):
        with pytest.raises(ModelParameterError):
            boot.BootstrapParameters(n_users=100, pi_dr=1.5)

    def test_rejects_nbt_too_large(self):
        with pytest.raises(ModelParameterError):
            boot.BootstrapParameters(n_users=10, n_bt=8)

    def test_rejects_small_nft(self):
        with pytest.raises(ModelParameterError):
            boot.BootstrapParameters(n_users=100, pieces_per_slot=5, n_ft=6)

    def test_with_bootstrapped(self, paper_params):
        p2 = paper_params.with_bootstrapped(100)
        assert p2.bootstrapped == 100
        assert p2.n_users == paper_params.n_users


class TestStructuralProperties:
    def test_reciprocity_only_seeder(self, paper_params):
        """Only the seeder ever bootstraps reciprocity newcomers."""
        p = boot.bootstrap_probability(Algorithm.RECIPROCITY, paper_params)
        assert p == pytest.approx(paper_params.n_seeder / paper_params.n_users)

    def test_tchain_equals_altruism_when_pi_dr_zero(self, paper_params):
        p = boot.BootstrapParameters(
            n_users=1000, pi_dr=0.0, bootstrapped=500, pieces_per_slot=5)
        assert boot.bootstrap_probability(Algorithm.TCHAIN, p) == (
            pytest.approx(boot.bootstrap_probability(Algorithm.ALTRUISM, p)))

    def test_more_bootstrapped_users_help(self, paper_params):
        """p_B grows with z(t) for every peer-driven algorithm."""
        few = paper_params.with_bootstrapped(50)
        many = paper_params.with_bootstrapped(900)
        for algorithm in ALL_ALGORITHMS:
            if algorithm is Algorithm.RECIPROCITY:
                continue
            assert (boot.bootstrap_probability(algorithm, many)
                    >= boot.bootstrap_probability(algorithm, few))

    @given(st.integers(10, 2000), st.integers(0, 1000))
    @settings(max_examples=40)
    def test_probabilities_in_range(self, n_users, z):
        params = boot.BootstrapParameters(
            n_users=max(n_users, 10), bootstrapped=z,
            n_ft=max(10, n_users // 2))
        for algorithm in ALL_ALGORITHMS:
            p = boot.bootstrap_probability(algorithm, params)
            assert 0.0 <= p <= 1.0


class TestLemma3:
    def test_single_user_geometric(self):
        """For one newcomer and constant p, E[T_B] is geometric: 1/p."""
        for p in (0.1, 0.5, 0.9):
            assert boot.expected_bootstrap_time(p, 1) == pytest.approx(
                1.0 / p, rel=1e-6)

    def test_certain_bootstrap_takes_one_slot(self):
        assert boot.expected_bootstrap_time(1.0, 7) == pytest.approx(1.0)

    def test_impossible_bootstrap_is_infinite(self):
        assert boot.expected_bootstrap_time(0.0, 1, max_slots=500) == math.inf

    def test_crowd_slower_than_individual(self):
        """E[T_B(P)] is the expected *maximum* of P waits: monotone in P."""
        t1 = boot.expected_bootstrap_time(0.3, 1)
        t10 = boot.expected_bootstrap_time(0.3, 10)
        t100 = boot.expected_bootstrap_time(0.3, 100)
        assert t1 < t10 < t100

    def test_monotone_in_probability(self):
        assert (boot.expected_bootstrap_time(0.6, 5)
                < boot.expected_bootstrap_time(0.3, 5))

    def test_time_varying_probability(self):
        """A ramping p_B(t) must be bounded by its constant extremes."""
        def ramp(t: int) -> float:
            return min(0.9, 0.1 * t)
        value = boot.expected_bootstrap_time(ramp, 5)
        hi = boot.expected_bootstrap_time(0.9, 5)
        lo = boot.expected_bootstrap_time(0.1, 5)
        assert hi <= value <= lo

    def test_rejects_bad_probability(self):
        with pytest.raises(ModelParameterError):
            boot.expected_bootstrap_time(1.5, 1)
        with pytest.raises(ModelParameterError):
            boot.expected_bootstrap_time(lambda t: 2.0, 1)

    def test_rejects_no_newcomers(self):
        with pytest.raises(ModelParameterError):
            boot.expected_bootstrap_time(0.5, 0)

    @given(st.floats(min_value=0.05, max_value=0.95),
           st.floats(min_value=0.0, max_value=0.9),
           st.integers(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_higher_probability_never_slower(self, p, boost, newcomers):
        q = min(1.0, p + boost)
        assert (boot.expected_bootstrap_time(q, newcomers)
                <= boot.expected_bootstrap_time(p, newcomers) + 1e-9)


class TestProposition4:
    def test_paper_ordering(self, paper_params):
        order = boot.proposition4_ordering(paper_params)
        assert order[0] is Algorithm.ALTRUISM
        assert order[-1] is Algorithm.RECIPROCITY
        assert order.index(Algorithm.TCHAIN) < order.index(Algorithm.BITTORRENT)
        assert order.index(Algorithm.FAIRTORRENT) < order.index(
            Algorithm.BITTORRENT)
        assert order.index(Algorithm.BITTORRENT) < order.index(
            Algorithm.REPUTATION)

    def test_altruism_dominates_when_condition_holds(self, paper_params):
        """Prop. 4: altruism has the largest bootstrap probability when
        K >= 2, N >> K, and Eq. 14 holds."""
        assert boot.fairtorrent_altruism_condition(paper_params)
        probs = boot.table2(paper_params)
        assert max(probs, key=probs.get) is Algorithm.ALTRUISM

    def test_eq14_fails_for_small_omega(self):
        params = boot.BootstrapParameters(n_users=1000, omega=0.0, n_ft=50)
        assert not boot.fairtorrent_altruism_condition(params)

    def test_tchain_fairtorrent_match_altruism_at_zero(self):
        """pi_DR = omega = 0 makes T-Chain and FairTorrent bootstrap
        exactly as fast as altruism (Prop. 4)... for FairTorrent the
        match requires n_FT = N - 1 candidates."""
        params = boot.BootstrapParameters(
            n_users=1000, pi_dr=0.0, omega=0.0, n_ft=999)
        probs = boot.table2(params)
        assert probs[Algorithm.TCHAIN] == pytest.approx(
            probs[Algorithm.ALTRUISM])


class TestBootstrapTrajectory:
    """Mean-field z(t) dynamics — the analytic Figure 4c."""

    def params(self):
        return boot.BootstrapParameters(n_users=1000, pi_dr=0.2, omega=0.3)

    def t90(self, algorithm):
        rows = boot.bootstrap_trajectory(algorithm, self.params(),
                                         n_slots=200)
        return next((r["slot"] for r in rows if r["fraction"] >= 0.9),
                    float("inf"))

    def test_monotone_and_bounded(self):
        rows = boot.bootstrap_trajectory(Algorithm.ALTRUISM, self.params(),
                                         n_slots=50)
        fractions = [r["fraction"] for r in rows]
        assert fractions == sorted(fractions)
        assert all(0.0 <= f <= 1.0 for f in fractions)

    def test_figure4c_ordering(self):
        """The curve ordering matches Fig. 4c: the fast trio, then
        BitTorrent, then reputation, then reciprocity."""
        fast = max(self.t90(a) for a in (Algorithm.ALTRUISM,
                                         Algorithm.TCHAIN,
                                         Algorithm.FAIRTORRENT))
        assert fast <= self.t90(Algorithm.BITTORRENT)
        assert self.t90(Algorithm.BITTORRENT) < self.t90(Algorithm.REPUTATION)
        assert self.t90(Algorithm.REPUTATION) < self.t90(
            Algorithm.RECIPROCITY)

    def test_reciprocity_crawls_at_seeder_rate(self):
        rows = boot.bootstrap_trajectory(Algorithm.RECIPROCITY,
                                         self.params(), n_slots=100)
        # Only the seeder bootstraps: ~n_S users per slot early on.
        assert rows[-1]["fraction"] < 0.15

    def test_self_reinforcement(self):
        """Starting half-bootstrapped accelerates the remainder."""
        cold = boot.bootstrap_trajectory(Algorithm.TCHAIN, self.params(),
                                         n_slots=3)
        warm = boot.bootstrap_trajectory(Algorithm.TCHAIN, self.params(),
                                         n_slots=3,
                                         initial_bootstrapped=500)
        assert warm[0]["bootstrapped"] - 500 > cold[0]["bootstrapped"]

    def test_validation(self):
        with pytest.raises(ModelParameterError):
            boot.bootstrap_trajectory(Algorithm.ALTRUISM, self.params(),
                                      n_slots=0)
        with pytest.raises(ModelParameterError):
            boot.bootstrap_trajectory(Algorithm.ALTRUISM, self.params(),
                                      initial_bootstrapped=5000)
