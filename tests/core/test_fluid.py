"""Tests for the fluid swarm model (Qiu-Srikant substrate)."""

from __future__ import annotations


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fluid
from repro.errors import ModelParameterError


def params(**kwargs):
    defaults = dict(arrival_rate=10.0, upload_rate=1.0, download_cap=3.0,
                    effectiveness=1.0, seed_departure_rate=2.0,
                    abort_rate=0.0)
    defaults.update(kwargs)
    return fluid.FluidParameters(**defaults)


class TestValidation:
    def test_rejects_bad_rates(self):
        with pytest.raises(ModelParameterError):
            params(arrival_rate=-1.0)
        with pytest.raises(ModelParameterError):
            params(upload_rate=0.0)
        with pytest.raises(ModelParameterError):
            params(effectiveness=1.5)
        with pytest.raises(ModelParameterError):
            params(seed_departure_rate=0.0)

    def test_simulation_rejects_bad_grid(self):
        with pytest.raises(ModelParameterError):
            fluid.simulate_fluid(params(), t_end=0.0)
        with pytest.raises(ModelParameterError):
            fluid.simulate_fluid(params(), t_end=1.0, dt=2.0)


class TestSteadyState:
    def test_qiu_srikant_closed_form(self):
        """theta = 0, supply-constrained: x = lam (1/mu - 1/gamma)/eta."""
        p = params(arrival_rate=10.0, upload_rate=1.0,
                   seed_departure_rate=2.0, effectiveness=0.8,
                   download_cap=float("inf"))
        state = fluid.steady_state(p)
        expected_x = 10.0 * (1.0 / 1.0 - 1.0 / 2.0) / 0.8
        assert state.downloaders == pytest.approx(expected_x)
        assert state.seeds == pytest.approx(10.0 / 2.0)

    def test_download_constrained_regime(self):
        """Huge upload supply: the download cap binds, x = lam / c."""
        p = params(arrival_rate=10.0, upload_rate=100.0,
                   seed_departure_rate=0.5, download_cap=2.0)
        state = fluid.steady_state(p)
        assert state.downloaders == pytest.approx(10.0 / 2.0)

    def test_no_arrivals_empty_swarm(self):
        state = fluid.steady_state(params(arrival_rate=0.0))
        assert state.downloaders == 0.0
        assert state.seeds == 0.0

    @given(st.floats(min_value=0.2, max_value=1.0),
           st.floats(min_value=0.2, max_value=0.95))
    @settings(max_examples=30)
    def test_effectiveness_lowers_download_time(self, eta_hi, scale):
        """The paper's core lever: better exchange feasibility (higher
        eta) strictly reduces fluid download times when supply binds."""
        eta_lo = eta_hi * scale
        p_hi = params(effectiveness=eta_hi, download_cap=float("inf"))
        p_lo = params(effectiveness=eta_lo, download_cap=float("inf"))
        assert (fluid.mean_download_time(p_hi)
                <= fluid.mean_download_time(p_lo) + 1e-9)


class TestTransient:
    def test_converges_to_steady_state(self):
        p = params(effectiveness=0.8, download_cap=float("inf"))
        trajectory = fluid.simulate_fluid(p, t_end=200.0, dt=0.01, y0=1.0)
        final = trajectory[-1]
        limit = fluid.steady_state(p)
        assert final.downloaders == pytest.approx(limit.downloaders, rel=0.05)
        assert final.seeds == pytest.approx(limit.seeds, rel=0.05)

    def test_states_nonnegative(self):
        p = params(arrival_rate=0.5, upload_rate=5.0)
        for state in fluid.simulate_fluid(p, t_end=50.0, dt=0.05):
            assert state.downloaders >= 0.0
            assert state.seeds >= 0.0

    def test_flash_crowd_drains(self):
        """No arrivals, big initial crowd: downloaders monotonically
        drain into seeds and out of the system."""
        p = params(arrival_rate=0.0, effectiveness=1.0)
        trajectory = fluid.simulate_fluid(p, t_end=100.0, dt=0.01,
                                          x0=100.0, y0=1.0)
        assert trajectory[-1].downloaders < 1e-3
        xs = [s.downloaders for s in trajectory]
        assert all(a >= b - 1e-9 for a, b in zip(xs, xs[1:]))


class TestBridge:
    def test_effectiveness_mapping_validates(self):
        assert fluid.effectiveness_from_exchange_probability(0.5) == 0.5
        with pytest.raises(ModelParameterError):
            fluid.effectiveness_from_exchange_probability(1.5)

    def test_mechanism_ranking_transfers_to_fluid_times(self):
        """Feed Proposition 2's per-mechanism feasibilities through the
        fluid model: the Figure 3 efficiency order reappears as
        download times."""
        from repro.core import piece_availability as pa
        from repro.core.tradeoff import mean_exchange_probability
        from repro.names import Algorithm

        dist = pa.PieceCountDistribution.uniform(24)
        times = {}
        for algorithm in (Algorithm.ALTRUISM, Algorithm.TCHAIN,
                          Algorithm.BITTORRENT):
            eta = mean_exchange_probability(algorithm, dist, 200)
            p = params(effectiveness=eta, download_cap=float("inf"))
            times[algorithm] = fluid.mean_download_time(p)
        assert (times[Algorithm.ALTRUISM] <= times[Algorithm.TCHAIN]
                <= times[Algorithm.BITTORRENT])
