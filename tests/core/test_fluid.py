"""Tests for the fluid swarm model (Qiu-Srikant substrate)."""

from __future__ import annotations


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fluid
from repro.errors import ModelParameterError


def params(**kwargs):
    defaults = dict(arrival_rate=10.0, upload_rate=1.0, download_cap=3.0,
                    effectiveness=1.0, seed_departure_rate=2.0,
                    abort_rate=0.0)
    defaults.update(kwargs)
    return fluid.FluidParameters(**defaults)


class TestValidation:
    def test_rejects_bad_rates(self):
        with pytest.raises(ModelParameterError):
            params(arrival_rate=-1.0)
        with pytest.raises(ModelParameterError):
            params(upload_rate=0.0)
        with pytest.raises(ModelParameterError):
            params(effectiveness=1.5)
        with pytest.raises(ModelParameterError):
            params(seed_departure_rate=-1.0)
        with pytest.raises(ModelParameterError):
            params(seed_departure_rate=float("nan"))

    def test_gamma_zero_and_inf_are_legal(self):
        """The closed interval [0, inf]: seeds-never-leave and
        depart-on-completion are both modellable (docs/SCALING.md)."""
        assert params(seed_departure_rate=0.0).seed_departure_rate == 0.0
        assert params(seed_departure_rate=float("inf")).seed_departure_rate \
            == float("inf")

    def test_simulation_rejects_bad_grid(self):
        with pytest.raises(ModelParameterError):
            fluid.simulate_fluid(params(), t_end=0.0)
        with pytest.raises(ModelParameterError):
            fluid.simulate_fluid(params(), t_end=1.0, dt=2.0)


class TestSteadyState:
    def test_qiu_srikant_closed_form(self):
        """theta = 0, supply-constrained: x = lam (1/mu - 1/gamma)/eta."""
        p = params(arrival_rate=10.0, upload_rate=1.0,
                   seed_departure_rate=2.0, effectiveness=0.8,
                   download_cap=float("inf"))
        state = fluid.steady_state(p)
        expected_x = 10.0 * (1.0 / 1.0 - 1.0 / 2.0) / 0.8
        assert state.downloaders == pytest.approx(expected_x)
        assert state.seeds == pytest.approx(10.0 / 2.0)

    def test_download_constrained_regime(self):
        """Huge upload supply: the download cap binds, x = lam / c."""
        p = params(arrival_rate=10.0, upload_rate=100.0,
                   seed_departure_rate=0.5, download_cap=2.0)
        state = fluid.steady_state(p)
        assert state.downloaders == pytest.approx(10.0 / 2.0)

    def test_no_arrivals_empty_swarm(self):
        state = fluid.steady_state(params(arrival_rate=0.0))
        assert state.downloaders == 0.0
        assert state.seeds == 0.0

    @given(st.floats(min_value=0.2, max_value=1.0),
           st.floats(min_value=0.2, max_value=0.95))
    @settings(max_examples=30)
    def test_effectiveness_lowers_download_time(self, eta_hi, scale):
        """The paper's core lever: better exchange feasibility (higher
        eta) strictly reduces fluid download times when supply binds."""
        eta_lo = eta_hi * scale
        p_hi = params(effectiveness=eta_hi, download_cap=float("inf"))
        p_lo = params(effectiveness=eta_lo, download_cap=float("inf"))
        assert (fluid.mean_download_time(p_hi)
                <= fluid.mean_download_time(p_lo) + 1e-9)


class TestTransient:
    def test_converges_to_steady_state(self):
        p = params(effectiveness=0.8, download_cap=float("inf"))
        trajectory = fluid.simulate_fluid(p, t_end=200.0, dt=0.01, y0=1.0)
        final = trajectory[-1]
        limit = fluid.steady_state(p)
        assert final.downloaders == pytest.approx(limit.downloaders, rel=0.05)
        assert final.seeds == pytest.approx(limit.seeds, rel=0.05)

    def test_states_nonnegative(self):
        p = params(arrival_rate=0.5, upload_rate=5.0)
        for state in fluid.simulate_fluid(p, t_end=50.0, dt=0.05):
            assert state.downloaders >= 0.0
            assert state.seeds >= 0.0

    def test_flash_crowd_drains(self):
        """No arrivals, big initial crowd: downloaders monotonically
        drain into seeds and out of the system."""
        p = params(arrival_rate=0.0, effectiveness=1.0)
        trajectory = fluid.simulate_fluid(p, t_end=100.0, dt=0.01,
                                          x0=100.0, y0=1.0)
        assert trajectory[-1].downloaders < 1e-3
        xs = [s.downloaders for s in trajectory]
        assert all(a >= b - 1e-9 for a, b in zip(xs, xs[1:]))


class TestGammaZero:
    """Seeds that never leave: the gamma = 0 corner the hybrid's
    coupling exposes (a shard whose completed peers all linger)."""

    def test_steady_state_demand_constrained(self):
        """Unbounded lingering supply: x* = lam / (c + theta), y -> inf."""
        p = params(arrival_rate=6.0, download_cap=3.0, abort_rate=1.0,
                   seed_departure_rate=0.0)
        state = fluid.steady_state(p)
        assert state.downloaders == pytest.approx(6.0 / (3.0 + 1.0))
        assert state.seeds == float("inf")

    def test_steady_state_no_cap(self):
        p = params(arrival_rate=6.0, download_cap=float("inf"),
                   seed_departure_rate=0.0)
        state = fluid.steady_state(p)
        assert state.downloaders == 0.0
        assert state.seeds == float("inf")

    def test_mean_download_time_is_cap_limited(self):
        p = params(arrival_rate=6.0, download_cap=3.0,
                   seed_departure_rate=0.0)
        assert fluid.mean_download_time(p) == pytest.approx(1.0 / 3.0)
        p_nocap = params(arrival_rate=6.0, download_cap=float("inf"),
                         seed_departure_rate=0.0)
        assert fluid.mean_download_time(p_nocap) == 0.0

    def test_euler_pins_the_closed_form(self):
        """Long-horizon Euler at gamma = 0: x converges to the
        demand-constrained closed form while y grows ~linearly at the
        completion rate (lam - theta x*)."""
        p = params(arrival_rate=6.0, download_cap=3.0, abort_rate=0.5,
                   seed_departure_rate=0.0)
        trajectory = fluid.simulate_fluid(p, t_end=400.0, dt=0.01)
        limit = fluid.steady_state(p)
        final = trajectory[-1]
        assert final.downloaders == pytest.approx(limit.downloaders,
                                                  rel=0.02)
        # y has no equilibrium: its tail slope is the completion rate.
        t1, t2 = trajectory[-2001], trajectory[-1]
        slope = (t2.seeds - t1.seeds) / (t2.time - t1.time)
        completed = p.arrival_rate - p.abort_rate * limit.downloaders
        assert slope == pytest.approx(completed, rel=0.02)

    def test_gamma_inf_keeps_no_lingering_mass(self):
        p = params(arrival_rate=4.0, download_cap=float("inf"),
                   seed_departure_rate=float("inf"))
        trajectory = fluid.simulate_fluid_schedule(p, t_end=50.0, dt=0.01,
                                                   y0=1.0, seed_floor=1.0)
        assert all(s.seeds == 0.0 for s in trajectory[1:])
        # Steady state matches: y = 0, supply comes from eta x alone.
        state = fluid.steady_state(p)
        assert state.seeds == 0.0
        assert state.downloaders == pytest.approx(4.0 / 1.0)  # lam/(mu eta)


class TestPostFlashDecay:
    """lambda = 0 tails: the linear-ODE closed form vs. Euler."""

    def euler(self, p, x0, y0, t, dt=0.0005):
        return fluid.simulate_fluid(p, t_end=t, dt=dt, x0=x0, y0=y0)[-1]

    @pytest.mark.parametrize("gamma", [0.0, 0.4, 2.0])
    def test_matrix_exponential_matches_euler(self, gamma):
        p = params(arrival_rate=0.0, upload_rate=0.7, effectiveness=0.6,
                   download_cap=float("inf"), seed_departure_rate=gamma,
                   abort_rate=0.1)
        for t in (0.25, 0.75, 1.5):
            x, y = fluid.post_flash_decay(p, x0=80.0, y0=3.0, t=t)
            ref = self.euler(p, 80.0, 3.0, t)
            # The linear form holds while downloaders remain: confirm
            # the reference trajectory never clamped at x = 0.
            assert ref.downloaders > 1.0
            assert x == pytest.approx(ref.downloaders, rel=0.01, abs=1e-6)
            assert y == pytest.approx(ref.seeds, rel=0.01, abs=1e-6)

    def test_instant_departure_scalar_decay(self):
        p = params(arrival_rate=0.0, upload_rate=1.0, effectiveness=0.5,
                   download_cap=float("inf"),
                   seed_departure_rate=float("inf"), abort_rate=0.25)
        x, y = fluid.post_flash_decay(p, x0=10.0, y0=0.0, t=2.0)
        assert y == 0.0
        import math
        assert x == pytest.approx(10.0 * math.exp(-(0.25 + 0.5) * 2.0))

    def test_rejects_out_of_scope_parameters(self):
        with pytest.raises(ModelParameterError):
            fluid.post_flash_decay(params(arrival_rate=1.0), 1.0, 1.0, 1.0)
        with pytest.raises(ModelParameterError):
            fluid.post_flash_decay(params(arrival_rate=0.0,
                                          download_cap=3.0), 1.0, 1.0, 1.0)
        p = params(arrival_rate=0.0, download_cap=float("inf"))
        with pytest.raises(ModelParameterError):
            fluid.post_flash_decay(p, 1.0, 1.0, -1.0)


class TestSchedules:
    def test_flash_crowd_rate_shape(self):
        lam = fluid.flash_crowd_rate(1000.0, 10.0)
        assert lam(0.0) == 100.0
        assert lam(9.999) == 100.0
        assert lam(10.0) == 0.0
        with pytest.raises(ModelParameterError):
            fluid.flash_crowd_rate(1000.0, 0.0)

    def test_stepwise_schedule(self):
        eta = fluid.stepwise([0.0, 10.0, 20.0], [0.2, 0.5, 0.9])
        assert eta(-5.0) == 0.2
        assert eta(0.0) == 0.2
        assert eta(10.0) == 0.5
        assert eta(19.9) == 0.5
        assert eta(25.0) == 0.9
        with pytest.raises(ModelParameterError):
            fluid.stepwise([10.0, 0.0], [0.1, 0.2])
        with pytest.raises(ModelParameterError):
            fluid.stepwise([], [])

    def test_schedule_integration_conserves_the_crowd(self):
        """Integrating the non-stationary flash lambda(t) injects
        exactly the population (the conservation identity the hybrid's
        ledger is built on): arrivals = integral of lambda dt."""
        p = params(arrival_rate=0.0, upload_rate=1e-9,
                   download_cap=float("inf"), abort_rate=0.0,
                   seed_departure_rate=1.0)
        # Negligible upload rate: nobody completes, so x(t_end) is the
        # integral of the arrival schedule.
        lam = fluid.flash_crowd_rate(500.0, 10.0)
        trajectory = fluid.simulate_fluid_schedule(
            p, t_end=20.0, dt=0.001, x0=0.0, y0=0.0, arrival_rate=lam)
        assert trajectory[-1].downloaders == pytest.approx(500.0, rel=1e-3)

    def test_stepwise_effectiveness_feedback_speeds_completion(self):
        p = params(arrival_rate=0.0, upload_rate=1.0,
                   download_cap=float("inf"), seed_departure_rate=1.0)
        slow = fluid.simulate_fluid_schedule(
            p, t_end=4.0, dt=0.01, x0=50.0, y0=1.0, effectiveness=0.1)
        fast = fluid.simulate_fluid_schedule(
            p, t_end=4.0, dt=0.01, x0=50.0, y0=1.0,
            effectiveness=fluid.stepwise([0.0, 2.0], [0.1, 0.9]))
        assert fast[-1].downloaders < slow[-1].downloaders

    def test_simulate_fluid_matches_schedule_with_constants(self):
        p = params()
        a = fluid.simulate_fluid(p, t_end=5.0, dt=0.01)
        b = fluid.simulate_fluid_schedule(p, t_end=5.0, dt=0.01)
        assert a == b


class TestBridge:
    def test_effectiveness_mapping_validates(self):
        assert fluid.effectiveness_from_exchange_probability(0.5) == 0.5
        with pytest.raises(ModelParameterError):
            fluid.effectiveness_from_exchange_probability(1.5)

    def test_mechanism_ranking_transfers_to_fluid_times(self):
        """Feed Proposition 2's per-mechanism feasibilities through the
        fluid model: the Figure 3 efficiency order reappears as
        download times."""
        from repro.core import piece_availability as pa
        from repro.core.tradeoff import mean_exchange_probability
        from repro.names import Algorithm

        dist = pa.PieceCountDistribution.uniform(24)
        times = {}
        for algorithm in (Algorithm.ALTRUISM, Algorithm.TCHAIN,
                          Algorithm.BITTORRENT):
            eta = mean_exchange_probability(algorithm, dist, 200)
            p = params(effectiveness=eta, download_cap=float("inf"))
            times[algorithm] = fluid.mean_download_time(p)
        assert (times[Algorithm.ALTRUISM] <= times[Algorithm.TCHAIN]
                <= times[Algorithm.BITTORRENT])
