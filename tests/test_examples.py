"""Smoke checks for the example scripts.

Examples are full simulation sweeps (minutes), so CI-level tests only
verify they parse, expose a ``main``, and import against the current
API — catching signature drift without paying the runtime.
"""

from __future__ import annotations

import ast
import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # quickstart + >= 2 domain scenarios


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    functions = {node.name for node in ast.walk(tree)
                 if isinstance(node, ast.FunctionDef)}
    assert "main" in functions
    assert ast.get_docstring(tree), "examples must explain themselves"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Importing the module must not raise (no sweeps run at import)."""
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(module.main)
