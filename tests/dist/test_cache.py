"""Content-addressed result cache: integrity, corruption, strictness."""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.dist.cache import CacheCorruptionError, ResultCache

FINGERPRINT = "SimulationConfig(algorithm=x, n_users=60)"


def _outcome(seed=7, value=1.25):
    return {"seed": seed, "used_seed": seed, "attempts": 1,
            "status": "ok", "error": None,
            "values": {"value": value}, "degraded": False}


class TestRoundtrip:
    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        outcome = _outcome()
        path = cache.put(FINGERPRINT, 7, outcome)
        assert os.path.exists(path)
        assert cache.get(FINGERPRINT, 7) == outcome
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert cache.stats.corrupt == 0

    def test_absent_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get(FINGERPRINT, 99) is None
        assert cache.stats.misses == 1

    def test_keyed_by_fingerprint_and_seed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(FINGERPRINT, 7, _outcome(seed=7))
        assert cache.get("other-config", 7) is None
        assert cache.get(FINGERPRINT, 8) is None
        assert cache.get(FINGERPRINT, 7) is not None

    def test_float_values_roundtrip_exactly(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        value = 0.1 + 0.2  # not representable prettily
        cache.put(FINGERPRINT, 1, _outcome(seed=1, value=value))
        assert cache.get(FINGERPRINT, 1)["values"]["value"] == value

    def test_non_ok_outcome_rejected(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        failed = dict(_outcome(), status="failed", error="boom")
        with pytest.raises(ValueError):
            cache.put(FINGERPRINT, 7, failed)

    def test_put_overwrites_atomically(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(FINGERPRINT, 7, _outcome(value=1.0))
        cache.put(FINGERPRINT, 7, _outcome(value=2.0))
        assert cache.get(FINGERPRINT, 7)["values"]["value"] == 2.0
        # No stray temp files left behind.
        leftovers = [name for _dir, _sub, names in os.walk(tmp_path)
                     for name in names if name.endswith(".tmp")]
        assert leftovers == []


class TestCorruption:
    def _corrupt_entry(self, cache, mutate):
        path = cache.put(FINGERPRINT, 7, _outcome())
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        mutate(path, entry)
        return path

    def test_truncated_entry_counts_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        path = cache.put(FINGERPRINT, 7, _outcome())
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"version": 1, "finge')
        assert cache.get(FINGERPRINT, 7) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1

    def test_tampered_payload_fails_checksum(self, tmp_path):
        cache = ResultCache(str(tmp_path))

        def mutate(path, entry):
            entry["outcome"]["values"]["value"] = 99.0
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)

        self._corrupt_entry(cache, mutate)
        assert cache.get(FINGERPRINT, 7) is None
        assert cache.stats.corrupt == 1

    def test_identity_mismatch_detected(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        src = cache.put(FINGERPRINT, 7, _outcome())
        # A checksum-valid entry copied under the wrong key: the tree
        # was moved or hand-edited.
        dst = cache.path_for(FINGERPRINT, 8)
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        shutil.copyfile(src, dst)
        assert cache.get(FINGERPRINT, 8) is None
        assert cache.stats.corrupt == 1

    def test_strict_mode_raises(self, tmp_path):
        cache = ResultCache(str(tmp_path), strict=True)
        path = cache.put(FINGERPRINT, 7, _outcome())
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json")
        with pytest.raises(CacheCorruptionError) as excinfo:
            cache.get(FINGERPRINT, 7)
        assert excinfo.value.path == path
        assert cache.stats.corrupt == 1

    def test_version_mismatch_is_corruption(self, tmp_path):
        cache = ResultCache(str(tmp_path))

        def mutate(path, entry):
            entry["version"] = 999
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)

        self._corrupt_entry(cache, mutate)
        assert cache.get(FINGERPRINT, 7) is None
        assert cache.stats.corrupt == 1
