"""Network chaos helper: a TCP proxy that misbehaves on command.

``ChaosProxy`` sits between the fabric dispatcher and an agent and
injects the failure modes the dispatcher must survive:

* ``latency`` — seconds of delay added to every forwarded chunk;
* ``drop_after_bytes`` — one-shot: after that many total forwarded
  bytes, both sides are closed *mid-chunk* (so a length-prefixed frame
  is torn in half — the ``ConnectionClosed`` surface). Subsequent
  connections pass cleanly, letting reconnect logic be exercised;
* ``refuse`` — accept-and-slam: every new connection is closed before
  a byte flows (the unreachable-host surface);
* ``kill_active()`` — close every live connection pair right now (a
  host vanishing mid-sweep).

All knobs are plain mutable attributes, safe to flip while traffic is
flowing. The proxy binds ``127.0.0.1:<ephemeral>``; point the
dispatcher at ``proxy.port`` instead of the agent's real port.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import List, Optional, Tuple


class ChaosProxy:
    def __init__(self, upstream_port: int,
                 upstream_host: str = "127.0.0.1", *,
                 latency: float = 0.0,
                 drop_after_bytes: Optional[int] = None,
                 refuse: bool = False) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.latency = latency
        self.drop_after_bytes = drop_after_bytes
        self.refuse = refuse
        self._forwarded = 0
        self._lock = threading.Lock()
        self._active: List[Tuple[socket.socket, socket.socket]] = []
        self._closing = False
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._thread = threading.Thread(target=self._serve, daemon=True,
                                        name=f"chaos-proxy-{self.port}")
        self._thread.start()

    # -- control ---------------------------------------------------------

    def kill_active(self) -> None:
        """Hard-close every live connection pair (host death)."""
        with self._lock:
            pairs, self._active = self._active, []
        for pair in pairs:
            for sock in pair:
                _close(sock)

    def stop(self) -> None:
        self._closing = True
        _close(self._listener)
        self.kill_active()
        self._thread.join(5.0)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- data path -------------------------------------------------------

    def _serve(self) -> None:
        while not self._closing:
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return
            if self.refuse:
                _close(client)
                continue
            try:
                server = socket.create_connection(self.upstream, 5.0)
            except OSError:
                _close(client)
                continue
            with self._lock:
                self._active.append((client, server))
            for src, dst in ((client, server), (server, client)):
                threading.Thread(target=self._pump, args=(src, dst),
                                 daemon=True).start()

    def _pump(self, src: socket.socket, dst: socket.socket) -> None:
        try:
            while True:
                data = src.recv(4096)
                if not data:
                    break
                if self.latency > 0.0:
                    time.sleep(self.latency)
                cut_at = None
                with self._lock:
                    if self.drop_after_bytes is not None:
                        before = self._forwarded
                        self._forwarded += len(data)
                        if self._forwarded >= self.drop_after_bytes:
                            cut_at = max(0, self.drop_after_bytes - before)
                            self.drop_after_bytes = None  # one-shot
                if cut_at is not None:
                    # Forward a partial chunk, then tear the wire: the
                    # receiver sees EOF mid-frame.
                    if cut_at:
                        dst.sendall(data[:cut_at])
                    break
                dst.sendall(data)
        except OSError:
            pass
        finally:
            _close(src)
            _close(dst)


def _close(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
