"""Wire-protocol tests: framing, tearing, and deterministic backoff."""

from __future__ import annotations

import pickle
import socket
import struct

import pytest

from repro.dist import protocol


def _pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


class TestFraming:
    def test_roundtrip(self):
        a, b = _pair()
        try:
            protocol.send_msg(a, {"t": "hello", "version": 1, "blob": b"x"})
            message = protocol.recv_msg(b)
            assert message == {"t": "hello", "version": 1, "blob": b"x"}
        finally:
            a.close()
            b.close()

    def test_many_frames_in_order(self):
        a, b = _pair()
        try:
            for i in range(20):
                protocol.send_msg(a, {"t": "n", "i": i})
            got = [protocol.recv_msg(b)["i"] for _ in range(20)]
            assert got == list(range(20))
        finally:
            a.close()
            b.close()

    def test_clean_eof_raises_connection_closed(self):
        a, b = _pair()
        a.close()
        try:
            with pytest.raises(protocol.ConnectionClosed):
                protocol.recv_msg(b)
        finally:
            b.close()

    def test_eof_mid_frame_raises_connection_closed(self):
        a, b = _pair()
        payload = pickle.dumps({"t": "x", "data": b"y" * 1000})
        # Header promises 1000+ bytes; deliver half, then vanish.
        a.sendall(struct.pack(">I", len(payload)) + payload[: len(payload) // 2])
        a.close()
        try:
            with pytest.raises(protocol.ConnectionClosed):
                protocol.recv_msg(b)
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = _pair()
        a.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
        try:
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_non_dict_frame_rejected(self):
        a, b = _pair()
        payload = pickle.dumps([1, 2, 3])
        a.sendall(struct.pack(">I", len(payload)) + payload)
        try:
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_undecodable_frame_rejected(self):
        a, b = _pair()
        a.sendall(struct.pack(">I", 4) + b"\xff\xff\xff\xff")
        try:
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_msg(b)
        finally:
            a.close()
            b.close()


class TestHandshakeHelpers:
    def test_expect_passes_matching(self):
        message = {"t": "ready", "slots": 2}
        assert protocol.expect(message, "ready") is message

    def test_expect_rejects_mismatch(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.expect({"t": "ready"}, "welcome")

    def test_hello_welcome_carry_version(self):
        assert protocol.hello()["version"] == protocol.PROTOCOL_VERSION
        assert protocol.welcome(4)["version"] == protocol.PROTOCOL_VERSION
        assert protocol.welcome(4)["slots"] == 4


class TestDeterministicBackoff:
    def test_jitter_in_unit_interval_and_deterministic(self):
        values = {protocol.deterministic_jitter(f"host:{i}|1")
                  for i in range(50)}
        assert all(0.0 <= v < 1.0 for v in values)
        assert len(values) > 40  # spread, not clumped
        assert (protocol.deterministic_jitter("x")
                == protocol.deterministic_jitter("x"))

    def test_backoff_grows_exponentially_and_caps(self):
        base, cap = 0.5, 4.0
        raw = [protocol.backoff_delay(f, base=base, cap=cap, token="t")
               / (1.0 + protocol.deterministic_jitter("t"))
               for f in range(1, 8)]
        assert raw[0] == pytest.approx(base)
        assert raw[1] == pytest.approx(base * 2)
        assert raw[-1] == pytest.approx(cap)
        assert all(b <= cap + 1e-9 for b in raw)

    def test_backoff_bounds(self):
        for failures in range(1, 10):
            delay = protocol.backoff_delay(
                failures, base=0.25, cap=10.0,
                token=f"agent|{failures}")
            assert 0.25 <= delay <= 20.0

    def test_zero_failures_zero_delay(self):
        assert protocol.backoff_delay(0, base=1.0, cap=9.0, token="t") == 0.0
