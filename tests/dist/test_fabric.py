"""Distributed sweep fabric: digest invariance, failover, chaos.

The acceptance bar for the fabric is byte-identical
``SweepResult.canonical_digest`` across: local pool only, 1 agent,
2+ agents, an agent killed mid-sweep (in-flight tasks re-dispatched),
and a warm-cache re-run — with the chaos proxy exercising the
drop/disconnect paths. The fake tasks live at module level so they
pickle into agent slot workers (``spawn``).
"""

from __future__ import annotations

import contextlib
import math
import os
import threading
import time

import pytest

from repro.dist import (Agent, AgentUnreachableError, FabricBackend,
                        parse_hosts)
from repro.experiments.executor import TaskSpec
from repro.experiments.replicates import journal_digest, run_resilient_sweep
from repro.experiments.scenarios import smoke_scale
from repro.names import Algorithm
from tests.dist.chaos import ChaosProxy

SEEDS = (0, 1, 2, 3, 4, 5)

VALUE = {"value": lambda m: m}

#: Fast-failure fabric knobs so tests never sit out long backoffs.
FAST_FABRIC = {"heartbeat_interval": 0.2, "connect_timeout": 2.0,
               "reconnect_base": 0.05, "reconnect_cap": 0.2,
               "max_reconnects": 2}


def _config():
    return smoke_scale(Algorithm.ALTRUISM)


# ---------------------------------------------------------------------
# Picklable fake tasks
# ---------------------------------------------------------------------

def task_identity(config, seed):
    return float(seed)


def task_nap(config, seed):
    time.sleep(0.25)
    return float(seed)


def task_crash_small_seeds(config, seed):
    """Hard-crashes the worker on original seeds; retry seeds are huge."""
    if seed < 1000:
        os._exit(13)
    return float(seed)


def task_always_crash(config, seed):
    os._exit(13)


def task_hang_on_seed_two(config, seed):
    if seed == 2:
        time.sleep(60.0)
    return float(seed)


def sqrt_task(x):
    return math.sqrt(x)


def nap_value(x):
    time.sleep(0.5)
    return x


def boom_with_bundle(path):
    raise RuntimeError(f"invariant violated [bundle: {path}]")


# ---------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------

@contextlib.contextmanager
def agents(n=1, slots=2):
    started = [Agent(slots=slots, heartbeat_interval=0.2)
               for _ in range(n)]
    hosts = ",".join(f"127.0.0.1:{agent.start()}" for agent in started)
    try:
        yield started, hosts
    finally:
        for agent in started:
            agent.stop()


def _sweep(seeds=SEEDS, **over):
    kwargs = dict(extractors=VALUE, task=task_identity, jobs=2,
                  timeout=60.0, max_attempts=3, retry_backoff=0.0)
    kwargs.update(over)
    return run_resilient_sweep(_config(), seeds, **kwargs)


# ---------------------------------------------------------------------
# Digest equivalence — the fabric acceptance bar
# ---------------------------------------------------------------------

class TestDigestEquivalence:
    def test_one_agent_matches_local(self):
        local = _sweep()
        with agents(1) as (_started, hosts):
            remote = _sweep(hosts=hosts, fabric_options=FAST_FABRIC)
        assert remote.canonical_digest() == local.canonical_digest()
        assert remote.telemetry["fallback_tasks"] == 0
        ran_on = {o.telemetry.get("host") for o in remote.outcomes}
        assert ran_on == {parse_hosts(hosts)[0].label}

    def test_two_agents_match_local(self):
        local = _sweep()
        with agents(2) as (_started, hosts):
            remote = _sweep(hosts=hosts, fabric_options=FAST_FABRIC)
        assert remote.canonical_digest() == local.canonical_digest()
        assert remote.telemetry["fallback_tasks"] == 0

    def test_agent_killed_mid_sweep_matches_local(self):
        seeds = tuple(range(8))
        local = _sweep(seeds=seeds, task=task_nap)
        with agents(2, slots=1) as (started, hosts):
            killer = threading.Timer(0.45, started[0].stop)
            killer.start()
            try:
                remote = _sweep(seeds=seeds, task=task_nap, hosts=hosts,
                                fabric_options=FAST_FABRIC)
            finally:
                killer.cancel()
        assert remote.canonical_digest() == local.canonical_digest()
        assert all(o.ok for o in remote.outcomes)

    def test_crash_retry_parity(self):
        seeds = (1, 2, 3)
        local = _sweep(seeds=seeds, task=task_crash_small_seeds)
        with agents(1) as (_started, hosts):
            remote = _sweep(seeds=seeds, task=task_crash_small_seeds,
                            hosts=hosts, fabric_options=FAST_FABRIC)
        assert remote.canonical_digest() == local.canonical_digest()
        # Worker crashes consumed an attempt on the fabric exactly as
        # they do locally: every replicate needed its retry seed.
        assert [o.attempts for o in remote.outcomes] == [2, 2, 2]
        assert all(o.used_seed >= 1000 for o in remote.outcomes)

    def test_exhausted_attempts_error_parity(self):
        seeds = (1, 2)
        local = _sweep(seeds=seeds, task=task_always_crash, max_attempts=1)
        with agents(1) as (_started, hosts):
            remote = _sweep(seeds=seeds, task=task_always_crash,
                            max_attempts=1, hosts=hosts,
                            fabric_options=FAST_FABRIC)
        # Error strings are digest material: the agent must phrase a
        # worker death byte-identically to the local pool.
        assert ([o.error for o in remote.outcomes]
                == [o.error for o in local.outcomes])
        assert "worker process died (exit code 13)" in remote.outcomes[0].error
        assert remote.canonical_digest() == local.canonical_digest()

    def test_timeout_parity(self):
        seeds = (1, 2, 3)
        local = _sweep(seeds=seeds, task=task_hang_on_seed_two, timeout=1.0)
        with agents(1) as (_started, hosts):
            remote = _sweep(seeds=seeds, task=task_hang_on_seed_two,
                            timeout=1.0, hosts=hosts,
                            fabric_options=FAST_FABRIC)
        assert remote.canonical_digest() == local.canonical_digest()
        assert all(o.ok for o in remote.outcomes)
        assert remote.outcomes[1].attempts == 2  # timed out once


class TestResultCache:
    def test_warm_cache_rerun_is_digest_identical(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = _sweep(cache_dir=cache_dir,
                      journal_path=str(tmp_path / "cold.jsonl"))
        warm = _sweep(cache_dir=cache_dir,
                      journal_path=str(tmp_path / "warm.jsonl"))
        assert warm.canonical_digest() == cold.canonical_digest()
        assert warm.cached == len(SEEDS)
        assert warm.telemetry["cache"]["hits"] == len(SEEDS)
        assert (journal_digest(str(tmp_path / "warm.jsonl"))
                == journal_digest(str(tmp_path / "cold.jsonl")))

    def test_partial_cache_interleaves_in_canonical_order(self, tmp_path):
        """Cache hits at seeds 0/2/4 interleave with computed 1/3/5 —
        the journal must still come out in canonical seed order."""
        cache_dir = str(tmp_path / "cache")
        _sweep(seeds=(0, 2, 4), cache_dir=cache_dir)
        full_cold = _sweep(journal_path=str(tmp_path / "cold.jsonl"))
        mixed = _sweep(cache_dir=cache_dir,
                       journal_path=str(tmp_path / "mixed.jsonl"))
        assert mixed.cached == 3
        assert mixed.canonical_digest() == full_cold.canonical_digest()
        assert (journal_digest(str(tmp_path / "mixed.jsonl"))
                == journal_digest(str(tmp_path / "cold.jsonl")))

    def test_cache_with_agents(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        local = _sweep(cache_dir=cache_dir)
        with agents(1) as (_started, hosts):
            warm = _sweep(cache_dir=cache_dir, hosts=hosts,
                          fabric_options=FAST_FABRIC)
        assert warm.cached == len(SEEDS)
        assert warm.canonical_digest() == local.canonical_digest()


# ---------------------------------------------------------------------
# Failover mechanics
# ---------------------------------------------------------------------

class TestFailover:
    def test_redispatch_preserves_attempt_number(self):
        """A host death is not the task's fault: re-dispatched tasks
        keep their attempt number (else the retry seed — and the sweep
        digest — would depend on which host died)."""
        agent = Agent(slots=1, heartbeat_interval=0.2)
        port = agent.start()
        specs = [TaskSpec(key=i, fn=nap_value,
                          args=(lambda attempt, i=i: (i,)),
                          max_attempts=3) for i in range(3)]
        backend = FabricBackend(f"127.0.0.1:{port}", **FAST_FABRIC)
        killer = threading.Timer(0.25, agent.stop)
        killer.start()
        try:
            report = backend.run(specs, timeout=30.0)
        finally:
            killer.cancel()
            agent.stop()
        assert [r.status for r in report.results] == ["ok"] * 3
        assert [r.attempts for r in report.results] == [1, 1, 1]
        assert report.stats.redispatches >= 1
        assert report.stats.fallback_tasks >= 1

    def test_unreachable_host_degrades_to_local(self):
        local = _sweep()
        # Nothing listens on port 1: connection refused immediately.
        remote = _sweep(hosts="127.0.0.1:1", fabric_options=FAST_FABRIC)
        assert remote.canonical_digest() == local.canonical_digest()
        assert remote.telemetry["fallback_tasks"] == len(SEEDS)
        assert remote.telemetry["connect_failures"] >= 1

    def test_no_fallback_raises_agent_unreachable(self):
        with pytest.raises(AgentUnreachableError) as excinfo:
            _sweep(hosts="127.0.0.1:1", local_fallback=False,
                   fabric_options=FAST_FABRIC)
        assert excinfo.value.reachable == 0
        assert "127.0.0.1:1" in excinfo.value.hosts

    def test_agent_serves_consecutive_sweeps(self):
        with agents(1) as (_started, hosts):
            first = _sweep(hosts=hosts, fabric_options=FAST_FABRIC)
            second = _sweep(hosts=hosts, fabric_options=FAST_FABRIC)
        assert first.canonical_digest() == second.canonical_digest()
        assert first.telemetry["fallback_tasks"] == 0
        assert second.telemetry["fallback_tasks"] == 0

    def test_min_agents_gate_falls_back_whole(self):
        with agents(1) as (_started, hosts):
            result = _sweep(hosts=hosts + ",127.0.0.1:1", min_agents=2,
                            fabric_options=FAST_FABRIC)
        assert result.telemetry["fallback_tasks"] == len(SEEDS)
        assert result.canonical_digest() == _sweep().canonical_digest()


# ---------------------------------------------------------------------
# Chaos: latency, torn frames, refused connections
# ---------------------------------------------------------------------

class TestChaos:
    def test_latency_is_tolerated(self):
        local = _sweep()
        with agents(1) as (_started, hosts):
            port = parse_hosts(hosts)[0].port
            with ChaosProxy(port, latency=0.02) as proxy:
                remote = _sweep(hosts=f"127.0.0.1:{proxy.port}",
                                fabric_options=FAST_FABRIC)
        assert remote.canonical_digest() == local.canonical_digest()
        assert remote.telemetry["fallback_tasks"] == 0

    def test_mid_message_disconnect_recovers(self):
        """The proxy tears the wire mid-frame after ~2KB; the
        dispatcher must treat it as a host death, reconnect, and land
        on the same digest."""
        local = _sweep()
        with agents(1) as (_started, hosts):
            port = parse_hosts(hosts)[0].port
            with ChaosProxy(port, drop_after_bytes=2000) as proxy:
                remote = _sweep(hosts=f"127.0.0.1:{proxy.port}",
                                fabric_options=FAST_FABRIC)
        assert remote.canonical_digest() == local.canonical_digest()
        assert all(o.ok for o in remote.outcomes)

    def test_refused_connections_fall_back(self):
        local = _sweep()
        with agents(1) as (_started, hosts):
            port = parse_hosts(hosts)[0].port
            with ChaosProxy(port, refuse=True) as proxy:
                remote = _sweep(hosts=f"127.0.0.1:{proxy.port}",
                                fabric_options=FAST_FABRIC)
        assert remote.canonical_digest() == local.canonical_digest()
        assert remote.telemetry["fallback_tasks"] == len(SEEDS)

    def test_kill_active_mid_sweep_recovers(self):
        local = _sweep(task=task_nap)
        with agents(1) as (_started, hosts):
            port = parse_hosts(hosts)[0].port
            with ChaosProxy(port) as proxy:
                killer = threading.Timer(0.4, proxy.kill_active)
                killer.start()
                try:
                    remote = _sweep(task=task_nap,
                                    hosts=f"127.0.0.1:{proxy.port}",
                                    fabric_options=FAST_FABRIC)
                finally:
                    killer.cancel()
        assert remote.canonical_digest() == local.canonical_digest()


# ---------------------------------------------------------------------
# Crash-forensics bundles ship home
# ---------------------------------------------------------------------

class TestBundleShipping:
    def test_error_bundle_lands_locally(self, tmp_path):
        remote_bundle = tmp_path / "remote" / "bundle-seed7.json"
        remote_bundle.parent.mkdir()
        remote_bundle.write_text('{"violation": "conservation"}')
        landed_dir = tmp_path / "landed"
        agent = Agent(slots=1, heartbeat_interval=0.2)
        port = agent.start()
        try:
            backend = FabricBackend(f"127.0.0.1:{port}",
                                    bundle_dir=str(landed_dir),
                                    **FAST_FABRIC)
            spec = TaskSpec(
                key=0, fn=boom_with_bundle,
                args=(lambda attempt, p=str(remote_bundle): (p,)),
                max_attempts=1)
            report = backend.run([spec], timeout=30.0)
        finally:
            agent.stop()
        result = report.results[0]
        assert result.status == "failed"
        assert report.stats.bundles_shipped == 1
        # The error's bundle pointer was rewritten to the local copy.
        assert str(remote_bundle) not in result.error
        landed = [os.path.join(str(landed_dir), name)
                  for name in os.listdir(str(landed_dir))]
        assert len(landed) == 1
        assert landed[0] in result.error
        with open(landed[0], "r", encoding="utf-8") as handle:
            assert handle.read() == '{"violation": "conservation"}'
