"""Harness for driving individual strategies inside a real simulation."""

from __future__ import annotations

import pytest

from repro.names import Algorithm
from repro.sim.config import AttackConfig, SimulationConfig, StrategyParameters
from repro.sim.context import StrategyContext
from repro.sim.runner import Simulation


def build_sim(algorithm: Algorithm, n_users: int = 6, n_pieces: int = 8,
              seed: int = 0, freerider_fraction: float = 0.0,
              attack: AttackConfig = None,
              params: StrategyParameters = None,
              seeder_capacity: float = 0.0) -> Simulation:
    """A fully-arrived swarm at time 0, ready for manual rounds.

    The seeder's capacity defaults to 0 so tests observe only the
    strategy under test; every user sees every other user.
    """
    config = SimulationConfig(
        algorithm=algorithm,
        n_users=n_users,
        n_pieces=n_pieces,
        seeder_capacity=seeder_capacity,
        flash_crowd_duration=0.0,
        freerider_fraction=freerider_fraction,
        attack=attack or AttackConfig(),
        strategy_params=params or StrategyParameters(),
        neighbor_count=n_users,
        max_rounds=50,
        seed=seed,
        # Tests seed the swarm by hand (give_piece), so the
        # zero-seed-bandwidth validation must not reject the config.
        allow_unseeded=True,
    )
    sim = Simulation(config)
    sim.engine.run_until(0.0)  # fire all arrivals (flash duration 0)
    assert len(sim.swarm.peers) == n_users + 1  # users + seeder
    return sim


def give_piece(sim: Simulation, peer, piece: int) -> None:
    """Grant a usable piece outside any transfer (test setup only)."""
    if peer.add_usable_piece(piece):
        # on_piece_gained (not raw availability) so the swarm's cached
        # needy-neighbor views see the new piece immediately.
        sim.swarm.on_piece_gained(peer, piece)


def run_strategy_round(sim: Simulation, peer) -> None:
    """Run exactly one strategy round for one peer."""
    sim.round_index += 1
    peer.budget.new_round()
    strategy = sim._strategies[peer.lineage_id]
    strategy.on_round(StrategyContext(sim, peer, strategy.rng))


def users_of(sim: Simulation):
    """Non-seeder peers ordered by id."""
    return sim.swarm.active_non_seeders()


@pytest.fixture
def algorithms_harness():
    return build_sim
