"""Behavioural tests for the PropShare extension strategy."""

from __future__ import annotations

import pytest

from repro.core import equilibrium as eq
from repro.names import ALL_ALGORITHMS, Algorithm, EXTENDED_ALGORITHMS
from repro.sim.config import StrategyParameters
from tests.algorithms.conftest import (
    build_sim,
    give_piece,
    run_strategy_round,
    users_of,
)


class TestEnumPlacement:
    def test_not_one_of_the_papers_six(self):
        assert Algorithm.PROPSHARE not in ALL_ALGORITHMS

    def test_in_extended_set(self):
        assert Algorithm.PROPSHARE in EXTENDED_ALGORITHMS
        assert set(ALL_ALGORITHMS).issubset(EXTENDED_ALGORITHMS)

    def test_parse(self):
        assert Algorithm.parse("PropShare") is Algorithm.PROPSHARE


class TestEquilibriumRow:
    def test_interpolates_capacity_and_altruism(self):
        params = eq.EquilibriumParameters([4.0, 2.0, 1.0, 1.0], alpha_bt=0.0)
        d = eq.download_utilization(Algorithm.PROPSHARE, params)
        assert list(d) == [4.0, 2.0, 1.0, 1.0]  # pure proportional return

    def test_alpha_one_is_altruism(self):
        params = eq.EquilibriumParameters([4.0, 2.0, 1.0, 1.0], alpha_bt=1.0)
        assert list(eq.download_utilization(Algorithm.PROPSHARE, params)) == (
            list(eq.altruism_download_utilization(params)))

    def test_fair_at_alpha_zero(self):
        params = eq.EquilibriumParameters([4.0, 2.0, 1.0, 1.0], alpha_bt=0.0)
        result = eq.equilibrium(Algorithm.PROPSHARE, params)
        assert result.fairness == pytest.approx(0.0, abs=1e-12)


class TestStrategy:
    def test_allocates_proportionally_to_contributions(self):
        sim = build_sim(Algorithm.PROPSHARE, n_users=8, seed=21,
                        params=StrategyParameters(alpha_bt=0.0))
        uploader, big, small = users_of(sim)[:3]
        for piece in range(8):
            give_piece(sim, uploader, piece)
        uploader.record_receipt(big.peer_id, pieces=9)
        uploader.record_receipt(small.peer_id, pieces=1)
        uploader.end_round()
        for _ in range(12):
            run_strategy_round(sim, uploader)
        served_big = uploader.uploaded_to.get(big.peer_id, 0)
        served_small = uploader.uploaded_to.get(small.peer_id, 0)
        assert served_big > served_small

    def test_reciprocal_slots_never_reach_newcomers(self):
        sim = build_sim(Algorithm.PROPSHARE,
                        params=StrategyParameters(alpha_bt=0.0))
        uploader = users_of(sim)[0]
        for piece in range(4):
            give_piece(sim, uploader, piece)
        run_strategy_round(sim, uploader)
        assert uploader.total_uploaded == 0

    def test_optimistic_share_bootstraps(self):
        sim = build_sim(Algorithm.PROPSHARE, seed=22,
                        params=StrategyParameters(alpha_bt=1.0))
        uploader = max(users_of(sim), key=lambda p: p.capacity)
        for piece in range(4):
            give_piece(sim, uploader, piece)
        run_strategy_round(sim, uploader)
        assert uploader.total_uploaded >= 1

    def test_falls_back_to_alltime_contributors(self):
        sim = build_sim(Algorithm.PROPSHARE, n_users=8, seed=23,
                        params=StrategyParameters(alpha_bt=0.0))
        uploader, friend = users_of(sim)[:2]
        for piece in range(8):
            give_piece(sim, uploader, piece)
        uploader.record_receipt(friend.peer_id, pieces=2)
        uploader.end_round()
        uploader.end_round()  # quiet last round
        run_strategy_round(sim, uploader)
        assert uploader.uploaded_to.get(friend.peer_id, 0) >= 1


class TestSimulationProfile:
    def test_behaves_like_a_fair_hybrid(self):
        from repro.experiments.scenarios import smoke_scale
        from repro.sim import run_simulation

        metrics = run_simulation(smoke_scale(Algorithm.PROPSHARE,
                                             seed=31)).metrics
        assert metrics.completion_fraction() > 0.95
        assert metrics.final_fairness() == pytest.approx(1.0, abs=0.12)

    def test_exposure_capped_by_optimistic_share(self):
        from repro.experiments.scenarios import smoke_scale, with_freeriders
        from repro.sim import run_simulation

        config = with_freeriders(smoke_scale(Algorithm.PROPSHARE, seed=31),
                                 fraction=0.2)
        metrics = run_simulation(config).metrics
        # Far below altruism's ~0.2; in BitTorrent's band.
        assert metrics.susceptibility() < 0.15
