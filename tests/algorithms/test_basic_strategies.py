"""Behavioural tests for the three basic strategies and the seeder."""

from __future__ import annotations


from repro.names import Algorithm
from repro.sim.config import StrategyParameters
from tests.algorithms.conftest import (
    build_sim,
    give_piece,
    run_strategy_round,
    users_of,
)


class TestReciprocity:
    def test_never_initiates(self):
        """A peer with pieces but no debts uploads nothing (Lemma 2)."""
        sim = build_sim(Algorithm.RECIPROCITY)
        uploader = users_of(sim)[0]
        for piece in range(4):
            give_piece(sim, uploader, piece)
        run_strategy_round(sim, uploader)
        assert uploader.total_uploaded == 0

    def test_repays_creditor_only(self):
        sim = build_sim(Algorithm.RECIPROCITY)
        uploader, creditor, bystander = users_of(sim)[:3]
        give_piece(sim, uploader, 0)
        give_piece(sim, uploader, 1)
        # The creditor gave us a piece; the bystander gave nothing.
        uploader.record_receipt(creditor.peer_id, pieces=1)
        run_strategy_round(sim, uploader)
        assert uploader.uploaded_to.get(creditor.peer_id, 0) >= 1
        assert uploader.uploaded_to.get(bystander.peer_id, 0) == 0

    def test_repays_at_most_debt(self):
        """Uploads never exceed what was received from the creditor."""
        sim = build_sim(Algorithm.RECIPROCITY)
        uploader, creditor = users_of(sim)[:2]
        for piece in range(6):
            give_piece(sim, uploader, piece)
        uploader.record_receipt(creditor.peer_id, pieces=2)
        for _ in range(4):
            run_strategy_round(sim, uploader)
        assert uploader.uploaded_to[creditor.peer_id] == 2

    def test_largest_contributor_first(self):
        sim = build_sim(Algorithm.RECIPROCITY)
        uploader, small, big = users_of(sim)[:3]
        give_piece(sim, uploader, 0)
        uploader.record_receipt(small.peer_id, pieces=1)
        uploader.record_receipt(big.peer_id, pieces=5)
        uploader.budget = type(uploader.budget)(1.0)  # one piece only
        run_strategy_round(sim, uploader)
        assert uploader.uploaded_to.get(big.peer_id, 0) == 1


class TestAltruism:
    def test_spends_full_budget(self):
        sim = build_sim(Algorithm.ALTRUISM)
        uploader = users_of(sim)[0]
        for piece in range(8):
            give_piece(sim, uploader, piece)
        run_strategy_round(sim, uploader)
        assert uploader.total_uploaded == uploader.budget.total_consumed
        assert uploader.total_uploaded >= 1

    def test_spreads_over_neighbors(self):
        sim = build_sim(Algorithm.ALTRUISM, n_users=10, seed=2)
        uploader = users_of(sim)[0]
        for piece in range(8):
            give_piece(sim, uploader, piece)
        for _ in range(12):
            run_strategy_round(sim, uploader)
        assert len(uploader.uploaded_to) >= 3  # many distinct receivers

    def test_stops_when_nobody_needy(self):
        sim = build_sim(Algorithm.ALTRUISM)
        uploader = users_of(sim)[0]
        give_piece(sim, uploader, 0)
        for other in users_of(sim):
            if other is not uploader:
                give_piece(sim, other, 0)
        run_strategy_round(sim, uploader)
        assert uploader.total_uploaded == 0


class TestReputation:
    def test_prefers_high_reputation(self):
        sim = build_sim(Algorithm.REPUTATION, n_users=8, seed=1,
                        params=StrategyParameters(alpha_r=0.0))
        uploader, favored, ignored = users_of(sim)[:3]
        for piece in range(8):
            give_piece(sim, uploader, piece)
        sim.swarm.reputation.report(favored.peer_id, 50.0)
        for _ in range(10):
            run_strategy_round(sim, uploader)
        assert uploader.uploaded_to.get(favored.peer_id, 0) > (
            uploader.uploaded_to.get(ignored.peer_id, 0))

    def test_reserved_bandwidth_idles_without_reputations(self):
        """alpha_r = 0 and all-zero reputations: nothing can be sent —
        the Table II reason reputation systems bootstrap slowly."""
        sim = build_sim(Algorithm.REPUTATION,
                        params=StrategyParameters(alpha_r=0.0))
        uploader = users_of(sim)[0]
        for piece in range(4):
            give_piece(sim, uploader, piece)
        run_strategy_round(sim, uploader)
        assert uploader.total_uploaded == 0

    def test_altruism_fraction_bootstraps_newcomers(self):
        sim = build_sim(Algorithm.REPUTATION, seed=3,
                        params=StrategyParameters(alpha_r=1.0))
        uploader = max(users_of(sim), key=lambda p: p.capacity)
        for piece in range(4):
            give_piece(sim, uploader, piece)
        run_strategy_round(sim, uploader)
        assert uploader.total_uploaded >= 1


class TestSeeder:
    def test_seeder_sprays_random_needy(self):
        sim = build_sim(Algorithm.ALTRUISM, seeder_capacity=4.0)
        seeder = sim._seeder
        sim.round_index += 1
        seeder.budget.new_round()
        strategy = sim._strategies[seeder.lineage_id]
        from repro.sim.context import StrategyContext
        strategy.on_round(StrategyContext(sim, seeder, strategy.rng))
        assert seeder.total_uploaded == 4
        received = sum(p.total_downloaded for p in users_of(sim))
        assert received == 4
