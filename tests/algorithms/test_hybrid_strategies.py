"""Behavioural tests for the three hybrid strategies."""

from __future__ import annotations


from repro.names import Algorithm
from repro.sim.config import StrategyParameters
from tests.algorithms.conftest import (
    build_sim,
    give_piece,
    run_strategy_round,
    users_of,
)


class TestBitTorrent:
    def test_tit_for_tat_prefers_top_contributor(self):
        sim = build_sim(Algorithm.BITTORRENT, n_users=8, seed=4,
                        params=StrategyParameters(alpha_bt=0.0, n_bt=2))
        uploader, top, mid, nobody = users_of(sim)[:4]
        for piece in range(8):
            give_piece(sim, uploader, piece)
        uploader.record_receipt(top.peer_id, pieces=5)
        uploader.record_receipt(mid.peer_id, pieces=1)
        uploader.end_round()  # contributions visible next round
        for _ in range(6):
            run_strategy_round(sim, uploader)
        assert uploader.uploaded_to.get(top.peer_id, 0) >= 1
        assert uploader.uploaded_to.get(nobody.peer_id, 0) == 0

    def test_tit_for_tat_bandwidth_never_reaches_empty_newcomers(self):
        """With alpha = 0 and no contributors, a BitTorrent peer idles
        rather than serving pieceless newcomers (Table II's model)."""
        sim = build_sim(Algorithm.BITTORRENT,
                        params=StrategyParameters(alpha_bt=0.0))
        uploader = users_of(sim)[0]
        for piece in range(4):
            give_piece(sim, uploader, piece)
        run_strategy_round(sim, uploader)
        assert uploader.total_uploaded == 0

    def test_optimistic_unchoke_reaches_newcomers(self):
        sim = build_sim(Algorithm.BITTORRENT, seed=5,
                        params=StrategyParameters(alpha_bt=1.0))
        uploader = max(users_of(sim), key=lambda p: p.capacity)
        for piece in range(4):
            give_piece(sim, uploader, piece)
        run_strategy_round(sim, uploader)
        assert uploader.total_uploaded >= 1

    def test_fallback_to_past_contributors(self):
        """When last round was quiet, all-time contributors still get
        the tit-for-tat share."""
        sim = build_sim(Algorithm.BITTORRENT, n_users=8, seed=6,
                        params=StrategyParameters(alpha_bt=0.0))
        uploader, old_friend = users_of(sim)[:2]
        for piece in range(8):
            give_piece(sim, uploader, piece)
        uploader.record_receipt(old_friend.peer_id, pieces=2)
        uploader.end_round()
        uploader.end_round()  # two quiet rounds: last-round ledger empty
        assert uploader.received_last_round == {}
        run_strategy_round(sim, uploader)
        assert uploader.uploaded_to.get(old_friend.peer_id, 0) >= 1


class TestFairTorrent:
    def test_serves_most_owed_neighbor(self):
        sim = build_sim(Algorithm.FAIRTORRENT, n_users=6, seed=7)
        uploader, owed, neutral = users_of(sim)[:3]
        for piece in range(8):
            give_piece(sim, uploader, piece)
        # We owe `owed` 3 pieces (deficit -3); `neutral` is at 0.
        uploader.record_receipt(owed.peer_id, pieces=3)
        uploader.budget = type(uploader.budget)(1.0)
        run_strategy_round(sim, uploader)
        assert uploader.uploaded_to.get(owed.peer_id, 0) == 1
        assert uploader.uploaded_to.get(neutral.peer_id, 0) == 0

    def test_zero_deficit_pool_served_randomly(self):
        """With all deficits at zero, pieces go to random newcomers —
        FairTorrent's altruism component."""
        sim = build_sim(Algorithm.FAIRTORRENT, n_users=10, seed=8)
        uploader = users_of(sim)[0]
        for piece in range(8):
            give_piece(sim, uploader, piece)
        for _ in range(10):
            run_strategy_round(sim, uploader)
        assert len(uploader.uploaded_to) >= 3

    def test_positive_deficit_deprioritised(self):
        """A peer we have already over-served waits behind the rest."""
        sim = build_sim(Algorithm.FAIRTORRENT, n_users=6, seed=9)
        uploader, leech = users_of(sim)[:2]
        for piece in range(8):
            give_piece(sim, uploader, piece)
        uploader.record_upload(leech.peer_id, pieces=4)  # deficit +4
        baseline = uploader.uploaded_to[leech.peer_id]
        for _ in range(3):
            run_strategy_round(sim, uploader)
        # Others (deficit 0) are strictly preferred while they need data.
        others_served = sum(count for pid, count in uploader.uploaded_to.items()
                            if pid != leech.peer_id)
        assert others_served > 0
        assert uploader.uploaded_to[leech.peer_id] == baseline


class TestTChain:
    def test_seed_creates_pending_obligation(self):
        sim = build_sim(Algorithm.TCHAIN, seed=10)
        uploader, receiver = users_of(sim)[:2]
        give_piece(sim, uploader, 0)
        sim.round_index += 1
        uploader.budget.new_round()
        assert sim.tchain_seed(uploader, receiver.peer_id)
        assert receiver.pending  # encrypted, not usable
        assert receiver.usable_piece_count == 0
        assert receiver.total_downloaded == 0

    def test_receiver_forwards_to_unlock(self):
        sim = build_sim(Algorithm.TCHAIN, seed=11)
        uploader, receiver = users_of(sim)[:2]
        give_piece(sim, uploader, 0)
        sim.round_index += 1
        uploader.budget.new_round()
        assert sim.tchain_seed(uploader, receiver.peer_id)
        # Next round the receiver's strategy honours the obligation by
        # forwarding the (still encrypted) piece to a third user.
        run_strategy_round(sim, receiver)
        assert receiver.usable_piece_count == 1
        assert receiver.total_uploaded == 1
        assert not receiver.pending

    def test_direct_reciprocity_repays_uploader(self):
        sim = build_sim(Algorithm.TCHAIN, seed=12)
        uploader, receiver = users_of(sim)[:2]
        give_piece(sim, uploader, 0)
        give_piece(sim, receiver, 5)  # something the uploader needs
        sim.round_index += 1
        uploader.budget.new_round()
        assert sim.tchain_seed(uploader, receiver.peer_id)
        obligation = next(iter(receiver.pending.values())).obligation
        assert obligation.designated_target is None  # direct
        run_strategy_round(sim, receiver)
        assert uploader.received_from.get(receiver.peer_id, 0) == 1
        assert receiver.usable_piece_count == 2  # own piece + unlocked

    def test_blacklist_stops_service_to_nonreciprocators(self):
        params = StrategyParameters(tchain_obligation_patience=1,
                                    tchain_max_pending=1)
        sim = build_sim(Algorithm.TCHAIN, seed=13, params=params)
        uploader, deadbeat = users_of(sim)[:2]
        for piece in range(6):
            give_piece(sim, uploader, piece)
        sim.round_index += 1
        uploader.budget.new_round()
        assert sim.tchain_seed(uploader, deadbeat.peer_id)
        # One pending obligation hits max_pending immediately.
        assert sim.tchain_blacklisted(deadbeat)
        assert not sim.tchain_seed(uploader, deadbeat.peer_id)
        # Patience expires -> still blacklisted via staleness.
        sim.round_index += 3
        assert sim.tchain_blacklisted(deadbeat)

    def test_fulfill_drops_orphaned_obligation(self):
        sim = build_sim(Algorithm.TCHAIN, seed=14)
        by_capacity = sorted(users_of(sim), key=lambda p: -p.capacity)
        uploader, receiver = by_capacity[:2]
        give_piece(sim, uploader, 0)
        sim.round_index += 1
        uploader.budget.new_round()
        assert sim.tchain_seed(uploader, receiver.peer_id)
        pending = next(iter(receiver.pending.values()))
        # The key holder leaves before releasing the key.
        for piece in range(sim.config.n_pieces):
            give_piece(sim, uploader, piece)
        sim._process_departures()
        receiver.budget.new_round()
        assert not sim.tchain_fulfill(receiver, pending)
        assert not receiver.pending  # dropped, re-downloadable
        assert receiver.needs_piece(pending.piece_id)


class TestTChainRedesignation:
    def test_stale_designation_retargeted(self):
        """If the designated third user no longer needs the piece, the
        receiver forwards to any other user that does."""
        sim = build_sim(Algorithm.TCHAIN, n_users=6, seed=15)
        by_capacity = sorted(users_of(sim), key=lambda p: -p.capacity)
        uploader, receiver = by_capacity[:2]
        give_piece(sim, uploader, 0)
        sim.round_index += 1
        uploader.budget.new_round()
        assert sim.tchain_seed(uploader, receiver.peer_id)
        pending = next(iter(receiver.pending.values()))
        designated = pending.obligation.designated_target
        if designated is not None:
            # The designated target acquires the piece elsewhere.
            give_piece(sim, sim.swarm.peers[designated], 0)
        run_strategy_round(sim, receiver)
        # The obligation was still fulfilled (forwarded to someone else
        # or repaid directly) and the receiver's copy unlocked.
        assert not receiver.pending
        assert receiver.usable_piece_count >= 1

    def test_obligation_stalls_when_nobody_needs_the_piece(self):
        """With every other user already holding the piece and the
        uploader needing nothing, the obligation cannot be met — the
        piece stays locked rather than being given away for free."""
        sim = build_sim(Algorithm.TCHAIN, n_users=4, seed=16)
        by_capacity = sorted(users_of(sim), key=lambda p: -p.capacity)
        uploader, receiver = by_capacity[:2]
        give_piece(sim, uploader, 0)
        sim.round_index += 1
        uploader.budget.new_round()
        assert sim.tchain_seed(uploader, receiver.peer_id)
        # Everyone else gets piece 0 and the whole rest of the file,
        # so no forward target and no generalised-indirect target
        # exists, and the uploader needs nothing from the receiver.
        for peer in users_of(sim):
            if peer not in (receiver,):
                for piece in range(sim.config.n_pieces):
                    give_piece(sim, peer, piece)
        run_strategy_round(sim, receiver)
        assert receiver.pending  # still locked
        assert receiver.usable_piece_count == 0
