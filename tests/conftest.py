"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.core.equilibrium import EquilibriumParameters
from repro.experiments.scenarios import smoke_scale
from repro.names import Algorithm


#: A heterogeneous capacity vector mirroring the default simulation
#: population (two fast, six medium, eight slow, four very slow users).
EXAMPLE_CAPACITIES = [6.0] * 2 + [3.0] * 6 + [1.0] * 8 + [0.5] * 4


@pytest.fixture
def capacities():
    return list(EXAMPLE_CAPACITIES)


@pytest.fixture
def eq_params(capacities):
    return EquilibriumParameters(capacities)


@pytest.fixture
def smoke_config():
    return smoke_scale(Algorithm.TCHAIN, seed=1)
