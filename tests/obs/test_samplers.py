"""Columnar series store, percentile, and entropy helpers."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.samplers import SeriesStore, entropy, percentile


class TestSeriesStore:
    def test_columns_align_with_shared_index(self):
        store = SeriesStore()
        store.append(0, {"a": 1.0, "b": 10.0})
        store.append(5, {"a": 2.0, "b": 20.0})
        assert store.index() == [0.0, 5.0]
        assert store.column("a") == [1.0, 2.0]
        assert store.names() == ["a", "b"]
        assert len(store) == 2

    def test_late_series_is_nan_padded_backwards(self):
        store = SeriesStore()
        store.append(0, {"a": 1.0})
        store.append(1, {"a": 2.0, "late": 9.0})
        late = store.column("late")
        assert math.isnan(late[0])
        assert late[1] == 9.0

    def test_absent_series_is_nan_padded_forwards(self):
        store = SeriesStore()
        store.append(0, {"a": 1.0, "b": 2.0})
        store.append(1, {"a": 3.0})
        b = store.column("b")
        assert b[0] == 2.0
        assert math.isnan(b[1])

    def test_compact_round_trip_preserves_everything(self):
        store = SeriesStore()
        store.append(0, {"a": 1.0})
        store.append(2, {"a": 2.0, "b": 5.0})
        rebuilt = SeriesStore.from_compact(store.to_compact())
        assert rebuilt.index() == store.index()
        assert rebuilt.names() == store.names()
        assert rebuilt.column("a") == store.column("a")

    def test_compact_payload_survives_json(self):
        # The payload crosses worker pipes and lands in sweep journals:
        # it must be plain JSON-serialisable data.
        store = SeriesStore()
        store.append(0, {"a": 1.5})
        payload = json.loads(json.dumps(store.to_compact()))
        assert SeriesStore.from_compact(payload).column("a") == [1.5]

    def test_csv_renders_nan_as_empty_cell(self):
        store = SeriesStore()
        store.append(0, {"a": 1.0})
        store.append(1, {"a": 2.0, "b": 3.0})
        lines = store.to_csv().splitlines()
        assert lines[0] == "round,a,b"
        assert lines[1] == "0,1.0,"
        assert lines[2] == "1,2.0,3.0"

    def test_jsonl_renders_nan_as_null(self):
        store = SeriesStore()
        store.append(0, {"a": 1.0})
        store.append(1, {"b": 2.0})
        rows = [json.loads(line) for line in
                store.to_jsonl().splitlines()]
        assert rows[0] == {"round": 0.0, "a": 1.0, "b": None}
        assert rows[1] == {"round": 1.0, "a": None, "b": 2.0}

    def test_last_and_default(self):
        store = SeriesStore()
        assert math.isnan(store.last("missing"))
        assert store.last("missing", default=-1.0) == -1.0
        store.append(0, {"a": 4.0})
        assert store.last("a") == 4.0

    def test_dashboard_renders_one_line_per_series(self):
        store = SeriesStore()
        for i in range(8):
            store.append(i, {"up": float(i), "flat": 1.0})
        text = store.dashboard(width=8)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("flat")
        assert lines[1].startswith("up")
        assert "7" in lines[1]  # latest value is printed

    def test_dashboard_empty_store(self):
        assert SeriesStore().dashboard() == "(no series sampled)"


class TestPercentile:
    def test_nearest_rank_median(self):
        assert percentile([3.0, 1.0, 2.0, 4.0], 50) == 2.0

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_single_value(self):
        assert percentile([7.0], 25) == 7.0
        assert percentile([7.0], 90) == 7.0

    def test_out_of_range_ranks_clamp_to_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, -5) == 1.0
        assert percentile(values, 150) == 5.0
        assert percentile([7.0], -5) == 7.0
        assert percentile([7.0], 150) == 7.0

    def test_nan_rank_raises(self):
        # Previously surfaced as a cryptic "cannot convert float NaN to
        # integer" from math.ceil deep inside; now rejected up front.
        with pytest.raises(ValueError, match="NaN"):
            percentile([1.0, 2.0], math.nan)
        with pytest.raises(ValueError, match="NaN"):
            percentile([], math.nan)


class TestEntropy:
    def test_uniform_distribution(self):
        assert entropy([1, 1, 1, 1]) == pytest.approx(2.0)

    def test_degenerate_distribution_is_zero(self):
        assert entropy([4, 0, 0]) == 0.0
        assert entropy([]) == 0.0
        assert entropy([0, 0]) == 0.0

    def test_skew_lowers_entropy(self):
        assert entropy([9, 1]) < entropy([5, 5])
