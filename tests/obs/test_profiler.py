"""Span-aggregation math, merge semantics, and table rendering."""

from __future__ import annotations

import pytest

from repro.obs.profiler import SpanProfiler


class TestAggregationMath:
    def test_count_total_min_max_mean(self):
        profiler = SpanProfiler()
        for elapsed in (0.2, 0.5, 0.3):
            profiler.add("engine.round", elapsed)
        span = profiler.spans()["engine.round"]
        assert span["count"] == 3
        assert span["total"] == pytest.approx(1.0)
        assert span["min"] == pytest.approx(0.2)
        assert span["max"] == pytest.approx(0.5)
        assert span["mean"] == pytest.approx(1.0 / 3.0)

    def test_single_sample(self):
        profiler = SpanProfiler()
        profiler.add("x", 0.125)
        span = profiler.spans()["x"]
        assert span["min"] == span["max"] == span["mean"] == 0.125

    def test_spans_sorted_by_name(self):
        profiler = SpanProfiler()
        profiler.add("b", 1.0)
        profiler.add("a", 1.0)
        assert list(profiler.spans()) == ["a", "b"]
        assert len(profiler) == 2

    def test_span_context_manager_measures_positive_time(self):
        profiler = SpanProfiler()
        with profiler.span("block"):
            sum(range(1000))
        span = profiler.spans()["block"]
        assert span["count"] == 1
        assert span["total"] >= 0.0


class TestMerge:
    def test_merge_combines_disjoint_and_overlapping_spans(self):
        a = SpanProfiler()
        a.add("shared", 0.4)
        a.add("only_a", 0.1)
        b = SpanProfiler()
        b.add("shared", 0.6)
        b.add("shared", 0.2)
        a.merge(b.as_dict())
        shared = a.spans()["shared"]
        assert shared["count"] == 3
        assert shared["total"] == pytest.approx(1.2)
        assert shared["min"] == pytest.approx(0.2)
        assert shared["max"] == pytest.approx(0.6)
        assert "only_a" in a.spans()

    def test_merge_ignores_empty_spans(self):
        profiler = SpanProfiler()
        profiler.merge({"ghost": {"count": 0, "total": 0.0,
                                  "min": 0.0, "max": 0.0, "mean": 0.0}})
        assert len(profiler) == 0

    def test_merge_round_trips_as_dict(self):
        a = SpanProfiler()
        a.add("x", 0.5)
        clone = SpanProfiler()
        clone.merge(a.as_dict())
        assert clone.spans() == a.spans()


class TestTable:
    def test_table_orders_by_total_descending(self):
        profiler = SpanProfiler()
        profiler.add("small", 0.001)
        profiler.add("big", 1.0)
        lines = profiler.table().splitlines()
        assert any("span" in line for line in lines)
        body = [line for line in lines if line.startswith(("big", "small"))]
        assert body[0].startswith("big")

    def test_table_shares_sum_to_100(self):
        profiler = SpanProfiler()
        profiler.add("only", 0.5)
        assert "100" in profiler.table()
