"""Ring-buffer tracer: wraparound, deterministic sampling, accounting."""

from __future__ import annotations

import pytest

from repro.obs.tracer import EventTracer, TraceEvent


def offer_n(tracer: EventTracer, n: int, category: str = "transfer",
            start: int = 0) -> list:
    """Offer ``n`` numbered events; return the per-offer keep flags."""
    return [tracer.offer(float(i), i, category, "send", {"i": i})
            for i in range(start, start + n)]


class TestRingWraparound:
    def test_capacity_bounds_retention_oldest_first(self):
        tracer = EventTracer(capacity=4)
        offer_n(tracer, 10)
        assert len(tracer) == 4
        assert [e.fields["i"] for e in tracer.events()] == [6, 7, 8, 9]
        assert tracer.dropped == 6

    def test_eviction_does_not_count_as_sampled_out(self):
        tracer = EventTracer(capacity=2)
        offer_n(tracer, 5)
        counts = tracer.counts()["transfer"]
        assert counts == {"seen": 5, "kept": 5, "sampled_out": 0}
        assert tracer.dropped == 3

    def test_capacity_one_keeps_latest(self):
        tracer = EventTracer(capacity=1)
        offer_n(tracer, 3)
        assert [e.fields["i"] for e in tracer.events()] == [2]

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)


class TestSamplingDeterminism:
    def test_one_in_n_keeps_first_then_every_nth(self):
        tracer = EventTracer(capacity=100, sample_rates={"transfer": 3})
        kept = offer_n(tracer, 9)
        assert kept == [True, False, False] * 3
        assert [e.fields["i"] for e in tracer.events()] == [0, 3, 6]

    def test_counters_reconcile_seen_kept_sampled_out(self):
        tracer = EventTracer(capacity=100, sample_rates={"transfer": 4})
        offer_n(tracer, 10)
        counts = tracer.counts()["transfer"]
        assert counts["seen"] == 10
        assert counts["kept"] == 3  # offers 0, 4, 8
        assert counts["sampled_out"] == 7
        assert counts["kept"] + counts["sampled_out"] == counts["seen"]

    def test_rates_are_per_category(self):
        tracer = EventTracer(capacity=100, sample_rates={"transfer": 2})
        offer_n(tracer, 4, category="transfer")
        offer_n(tracer, 4, category="fault")
        assert len(tracer.events("transfer")) == 2
        assert len(tracer.events("fault")) == 4

    def test_identical_offer_sequences_trace_identically(self):
        a = EventTracer(capacity=8, sample_rates={"transfer": 3})
        b = EventTracer(capacity=8, sample_rates={"transfer": 3})
        assert offer_n(a, 20) == offer_n(b, 20)
        assert a.events() == b.events()
        assert a.counts() == b.counts()


class TestCategoryFilter:
    def test_out_of_filter_categories_are_invisible(self):
        tracer = EventTracer(capacity=8, categories=("transfer",))
        assert tracer.offer(0.0, 0, "fault", "crash", {}) is False
        assert tracer.offer(0.0, 0, "transfer", "send", {}) is True
        assert tracer.counts() == {
            "transfer": {"seen": 1, "kept": 1, "sampled_out": 0}}
        assert tracer.wants("transfer")
        assert not tracer.wants("fault")

    def test_unfiltered_tracer_wants_everything(self):
        assert EventTracer(capacity=1).wants("anything")


class TestReadingAndReset:
    def test_events_snapshot_copies_fields(self):
        tracer = EventTracer(capacity=4)
        tracer.offer(1.5, 1, "transfer", "send", {"piece": 7})
        event = tracer.events()[0]
        assert event == TraceEvent(1.5, 1, "transfer", "send", {"piece": 7})

    def test_summary_shape(self):
        tracer = EventTracer(capacity=3)
        offer_n(tracer, 5)
        summary = tracer.summary()
        assert summary["capacity"] == 3
        assert summary["retained"] == 3
        assert summary["evicted"] == 2
        assert summary["counts"]["transfer"]["seen"] == 5

    def test_clear_resets_everything(self):
        tracer = EventTracer(capacity=2, sample_rates={"transfer": 2})
        offer_n(tracer, 5)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        assert tracer.counts() == {}
        # The sampling counter restarts: the first post-clear offer is kept.
        assert tracer.offer(0.0, 0, "transfer", "send", {}) is True
