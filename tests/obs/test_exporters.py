"""Exporters are pure functions: golden files pin their exact bytes."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.exporters import (sweep_series_to_chrome_trace,
                                 to_chrome_trace, to_jsonl)
from repro.obs.samplers import SeriesStore
from repro.obs.tracer import TraceEvent

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def reference_events() -> list:
    """A tiny fixed trace exercising every record shape."""
    return [
        TraceEvent(0.0, 0, "transfer", "plain",
                   {"uploader": 3, "target": 7, "piece": 12, "usable": True}),
        TraceEvent(1.0, 1, "choke", "unchoke",
                   {"peer": 3, "targets": [7, 9]}),
        TraceEvent(1.5, 1, "transfer", "lost",
                   {"uploader": 7, "target": 3, "piece": 4, "usable": False}),
        TraceEvent(2.0, 2, "completion", "complete",
                   {"peer": 7, "freerider": False, "elapsed": 2.0}),
    ]


def reference_series() -> SeriesStore:
    store = SeriesStore()
    store.append(0, {"active_peers": 2.0})
    store.append(2, {"active_peers": 2.0, "progress_p50": 0.5})
    return store


def golden(name: str) -> str:
    with open(os.path.join(GOLDEN_DIR, name), "r", encoding="utf-8") as fh:
        return fh.read()


class TestChromeTraceGolden:
    def test_bytes_match_golden_file(self):
        rendered = to_chrome_trace(reference_events(), reference_series(),
                                   label="golden")
        assert rendered == golden("chrome_trace.json")

    def test_output_is_valid_json_array(self):
        records = json.loads(to_chrome_trace(reference_events(),
                                             reference_series()))
        assert isinstance(records, list)
        phases = {record["ph"] for record in records}
        assert phases == {"M", "i", "C"}

    def test_metadata_names_process_and_categories(self):
        records = json.loads(to_chrome_trace(reference_events(),
                                             label="mylabel"))
        meta = [r for r in records if r["ph"] == "M"]
        assert meta[0]["args"]["name"] == "mylabel"
        thread_names = {r["args"]["name"] for r in meta[1:]}
        assert thread_names == {"transfer", "choke", "completion"}

    def test_sim_seconds_become_microseconds(self):
        records = json.loads(to_chrome_trace(reference_events()))
        instants = [r for r in records if r["ph"] == "i"]
        assert [r["ts"] for r in instants] == [0, 1_000_000, 1_500_000,
                                               2_000_000]

    def test_nan_counter_samples_are_skipped(self):
        records = json.loads(to_chrome_trace([], reference_series()))
        counters = [r for r in records if r["ph"] == "C"]
        # progress_p50 is NaN at round 0: 2 + 1 counter samples survive.
        assert len(counters) == 3
        assert all(r["args"]["value"] == r["args"]["value"]
                   for r in counters)

    def test_deterministic_output(self):
        first = to_chrome_trace(reference_events(), reference_series())
        second = to_chrome_trace(reference_events(), reference_series())
        assert first == second


class TestJsonlGolden:
    def test_bytes_match_golden_file(self):
        assert to_jsonl(reference_events()) == golden("events.jsonl")

    def test_one_sorted_object_per_line(self):
        lines = to_jsonl(reference_events()).splitlines()
        assert len(lines) == 4
        first = json.loads(lines[0])
        assert first["category"] == "transfer"
        assert first["round"] == 0
        assert list(first) == sorted(first)

    def test_empty_trace_renders_empty_string(self):
        assert to_jsonl([]) == ""


class TestSweepSeriesExport:
    def test_one_perfetto_process_per_seed_in_sorted_order(self):
        by_seed = {11: reference_series(), 3: reference_series()}
        records = json.loads(sweep_series_to_chrome_trace(by_seed,
                                                          label="sweep"))
        meta = [r for r in records if r["ph"] == "M"]
        assert [r["args"]["name"] for r in meta] == ["sweep seed 3",
                                                     "sweep seed 11"]
        assert [r["pid"] for r in meta] == [1, 2]

    def test_counters_carry_their_seed_pid(self):
        by_seed = {3: reference_series(), 11: reference_series()}
        records = json.loads(sweep_series_to_chrome_trace(by_seed))
        counters = [r for r in records if r["ph"] == "C"]
        assert {r["pid"] for r in counters} == {1, 2}

    def test_empty_sweep_is_valid_json(self):
        assert json.loads(sweep_series_to_chrome_trace({})) == []
