"""Regression tests: delayed reputation reports are keyed by lineage.

A report that is still in flight when its uploader whitewashes used to
be queued under the *peer id* captured at send time. At flush it then
credited the retired identity — a score ``Swarm.reset_identity`` had
just forgotten — while the live identity silently lost the credit it
had earned. Reports are now queued by ``lineage_id`` and resolved to
the lineage's current peer id when they come due; reports whose
lineage has departed are discarded and counted as a fault.
"""

from __future__ import annotations

from dataclasses import replace

from repro.names import Algorithm
from repro.sim import FaultConfig
from repro.sim.config import AttackConfig, SimulationConfig
from repro.sim.runner import Simulation, run_simulation


def build_sim(delay: int = 2, seed: int = 3) -> Simulation:
    config = SimulationConfig(
        algorithm=Algorithm.REPUTATION,
        n_users=6,
        n_pieces=8,
        flash_crowd_duration=0.0,
        neighbor_count=6,
        max_rounds=50,
        seed=seed,
        faults=FaultConfig(report_delay_rounds=delay),
    )
    sim = Simulation(config)
    sim.engine.run_until(0.0)  # fire all arrivals
    return sim


class TestLineageResolution:
    def test_credit_follows_whitewashed_identity(self):
        sim = build_sim(delay=2)
        peer = sim.swarm.active_non_seeders()[0]
        sim.round_index = 5
        sim._report_upload(peer)  # due at round 7
        old_id = peer.peer_id
        new_id = sim.swarm.reset_identity(peer)
        sim.round_index = 7
        sim._flush_due_reports()
        assert sim.swarm.reputation.score(new_id) == 1.0
        assert sim.swarm.reputation.score(old_id) == 0.0

    def test_not_yet_due_reports_stay_queued(self):
        sim = build_sim(delay=3)
        peer = sim.swarm.active_non_seeders()[0]
        sim.round_index = 1
        sim._report_upload(peer)
        sim.round_index = 2
        sim._flush_due_reports()
        assert sim.swarm.reputation.score(peer.peer_id) == 0.0
        sim.round_index = 4
        sim._flush_due_reports()
        assert sim.swarm.reputation.score(peer.peer_id) == 1.0

    def test_departed_lineage_report_dropped_and_counted(self):
        sim = build_sim(delay=2)
        peer = sim.swarm.active_non_seeders()[0]
        sim.round_index = 5
        sim._report_upload(peer)
        peer.departed = True
        sim.swarm.remove_peer(peer.peer_id)
        sim.round_index = 7
        sim._flush_due_reports()
        assert sim.swarm.reputation.score(peer.peer_id) == 0.0
        assert sim.collector.faults.reports_dropped == 1

    def test_immediate_reports_unaffected(self):
        sim = build_sim(delay=0)
        peer = sim.swarm.active_non_seeders()[0]
        sim._report_upload(peer)
        assert sim.swarm.reputation.score(peer.peer_id) == 1.0
        assert sim.collector.faults.delayed_reports == 0


class TestEndToEnd:
    def test_whitewashing_run_with_delayed_reports_is_deterministic(self):
        """Full run exercising the lineage path under whitewashing."""
        config = SimulationConfig(
            algorithm=Algorithm.REPUTATION,
            n_users=12,
            n_pieces=16,
            freerider_fraction=0.25,
            attack=AttackConfig(whitewash_interval=4),
            neighbor_count=6,
            max_rounds=60,
            seed=11,
            faults=FaultConfig(report_delay_rounds=3),
        )
        first = run_simulation(config).metrics
        second = run_simulation(replace(config)).metrics
        assert first == second
        assert first.faults.delayed_reports > 0
