"""Tests for the StrategyContext facade."""

from __future__ import annotations

import pytest

from repro.names import Algorithm
from repro.sim.context import StrategyContext
from repro.sim.peer import Obligation
from tests.algorithms.conftest import build_sim, give_piece, users_of


@pytest.fixture
def sim():
    return build_sim(Algorithm.TCHAIN, n_users=6, seed=44)


@pytest.fixture
def ctx(sim):
    peer = max(users_of(sim), key=lambda p: p.capacity)
    strategy = sim._strategies[peer.lineage_id]
    sim.round_index += 1
    peer.budget.new_round()
    return StrategyContext(sim, peer, strategy.rng)


class TestReads:
    def test_round_index(self, ctx):
        assert ctx.round_index == 1

    def test_params_come_from_config(self, sim, ctx):
        assert ctx.params is sim.config.strategy_params

    def test_budget_tracks_peer(self, ctx):
        assert ctx.budget() == ctx.peer.budget.available()

    def test_neighbors_active_only(self, sim, ctx):
        neighbors = ctx.neighbors()
        assert ctx.peer.peer_id not in neighbors
        assert all(ctx.is_active(pid) for pid in neighbors)

    def test_needy_requires_providable(self, sim, ctx):
        assert ctx.needy_neighbors() == []  # we hold nothing yet
        give_piece(sim, ctx.peer, 0)
        assert ctx.needy_neighbors()

    def test_ledger_accessors(self, ctx):
        other = ctx.neighbors()[0]
        assert ctx.received_from(other) == 0
        assert ctx.uploaded_to(other) == 0
        assert ctx.deficit(other) == 0
        assert ctx.received_last_round(other) == 0
        ctx.peer.record_upload(other, 2)
        assert ctx.uploaded_to(other) == 2
        assert ctx.deficit(other) == 2

    def test_reputation_reads_board(self, sim, ctx):
        other = ctx.neighbors()[0]
        sim.swarm.reputation.report(other, 3.0)
        assert ctx.reputation_of(other) == 3.0

    def test_peer_state_lookup(self, sim, ctx):
        other = ctx.neighbors()[0]
        assert ctx.peer_state(other).peer_id == other

    def test_pending_obligations_sorted_oldest_first(self, ctx):
        ctx.peer.add_pending_piece(3, Obligation(99, 3, None, 5))
        ctx.peer.add_pending_piece(1, Obligation(99, 1, None, 2))
        pending = ctx.pending_obligations()
        assert [p.piece_id for p in pending] == [1, 3]


class TestActions:
    def test_send_piece_via_context(self, sim, ctx):
        give_piece(sim, ctx.peer, 0)
        target = ctx.needy_neighbors()[0]
        assert ctx.send_piece(target)
        assert ctx.peer.uploaded_to[target] == 1

    def test_send_encrypted_via_context(self, sim, ctx):
        give_piece(sim, ctx.peer, 0)
        target = ctx.needy_neighbors()[0]
        assert ctx.send_encrypted(target)
        assert sim.swarm.peers[target].pending

    def test_send_encrypted_random_skips_blacklisted(self, sim, ctx):
        give_piece(sim, ctx.peer, 0)
        # Give every potential target max pending obligations.
        for pid in ctx.needy_neighbors():
            target = sim.swarm.peers[pid]
            for piece in range(sim.config.strategy_params.tchain_max_pending):
                target.add_pending_piece(
                    piece + 10, Obligation(98, piece + 10, None, 0))
        assert not ctx.send_encrypted_random()

    def test_fake_report_flagged(self, sim, ctx):
        other = ctx.neighbors()[0]
        ctx.report_fake_upload(other, 4.0)
        assert sim.swarm.reputation.score(other) == 4.0
        assert sim.swarm.reputation.fake_reported == 4.0
