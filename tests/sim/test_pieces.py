"""Tests for piece sets, availability tracking, and rarest-first."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.sim.pieces import (
    AvailabilityMap,
    PieceSet,
    bits_to_list,
    iter_bits,
    rarest_first,
)


class TestPieceSet:
    def test_starts_empty(self):
        ps = PieceSet(8)
        assert len(ps) == 0
        assert not ps.complete
        assert ps.missing() == set(range(8))

    def test_full(self):
        ps = PieceSet.full(4)
        assert ps.complete
        assert len(ps) == 4
        assert ps.missing() == set()

    def test_add_and_contains(self):
        ps = PieceSet(4)
        assert ps.add(2) is True
        assert ps.add(2) is False  # duplicate
        assert 2 in ps
        assert ps.has(2)
        assert not ps.has(3)

    def test_bounds_checked(self):
        ps = PieceSet(4)
        with pytest.raises(SimulationError):
            ps.add(4)
        with pytest.raises(SimulationError):
            ps.has(-1)

    def test_rejects_empty_file(self):
        with pytest.raises(ConfigurationError):
            PieceSet(0)

    def test_providable_to(self):
        a = PieceSet(6, have=[0, 1, 2])
        b = PieceSet(6, have=[2, 3])
        assert a.providable_to(b) == {0, 1}
        assert b.providable_to(a) == {3}

    def test_needs_from(self):
        a = PieceSet(6, have=[0, 1])
        b = PieceSet(6, have=[0, 1, 2])
        assert a.needs_from(b)
        assert not b.needs_from(a)

    def test_cross_file_rejected(self):
        with pytest.raises(SimulationError):
            PieceSet(4).providable_to(PieceSet(5))

    def test_copy_is_independent(self):
        a = PieceSet(4, have=[1])
        b = a.copy()
        b.add(2)
        assert 2 not in a

    @given(st.integers(1, 32), st.data())
    @settings(max_examples=40)
    def test_missing_complements_have(self, m, data):
        have = data.draw(st.sets(st.integers(0, m - 1)))
        ps = PieceSet(m, have=have)
        assert ps.missing() | set(ps) == set(range(m))
        assert ps.missing() & set(ps) == set()
        assert ps.complete == (len(have) == m)


class TestBitmaskRepresentation:
    def test_mask_mirrors_membership(self):
        ps = PieceSet(8, have=[0, 3, 5])
        assert ps.mask == (1 << 0) | (1 << 3) | (1 << 5)
        assert PieceSet.full(4).mask == 0b1111

    def test_missing_mask_is_complement(self):
        ps = PieceSet(4, have=[1, 2])
        assert ps.missing_mask() == 0b1001
        assert PieceSet.full(4).missing_mask() == 0

    def test_providable_mask(self):
        a = PieceSet(6, have=[0, 1, 2])
        b = PieceSet(6, have=[2, 3])
        assert a.providable_mask(b) == 0b000011
        assert b.providable_mask(a) == 0b001000

    def test_providable_mask_mismatched_sizes_rejected(self):
        with pytest.raises(SimulationError):
            PieceSet(4).providable_mask(PieceSet(5))

    def test_iteration_ascending(self):
        assert list(PieceSet(8, have=[6, 1, 4])) == [1, 4, 6]

    def test_iter_bits_ascending(self):
        assert list(iter_bits(0b101010)) == [1, 3, 5]
        assert bits_to_list(0) == []

    @given(st.sets(st.integers(0, 63)))
    @settings(max_examples=40)
    def test_bits_roundtrip(self, pieces):
        mask = 0
        for piece in pieces:
            mask |= 1 << piece
        assert bits_to_list(mask) == sorted(pieces)


class TestAvailabilityMap:
    def test_tracks_peers(self):
        avail = AvailabilityMap(4)
        avail.add_peer(PieceSet(4, have=[0, 1]))
        avail.add_peer(PieceSet(4, have=[1, 2]))
        assert [avail.count(i) for i in range(4)] == [1, 2, 1, 0]

    def test_remove_peer(self):
        avail = AvailabilityMap(3)
        ps = PieceSet(3, have=[0, 2])
        avail.add_peer(ps)
        avail.remove_peer(ps)
        assert [avail.count(i) for i in range(3)] == [0, 0, 0]

    def test_negative_count_is_corruption(self):
        avail = AvailabilityMap(2)
        with pytest.raises(SimulationError):
            avail.remove_peer(PieceSet(2, have=[0]))

    def test_incremental_add_piece(self):
        avail = AvailabilityMap(2)
        avail.add_piece(1)
        avail.add_piece(1)
        assert avail.count(1) == 2

    def test_remove_piece_decrements(self):
        avail = AvailabilityMap(3)
        avail.add_piece(1)
        avail.add_piece(1)
        avail.remove_piece(1)
        assert avail.count(1) == 1

    def test_remove_piece_below_zero_is_corruption(self):
        avail = AvailabilityMap(3)
        with pytest.raises(SimulationError):
            avail.remove_piece(0)

    def test_add_then_remove_peer_restores_buckets(self):
        avail = AvailabilityMap(4)
        stay = PieceSet(4, have=[0, 1])
        churn = PieceSet(4, have=[1, 2])
        avail.add_peer(stay)
        avail.add_peer(churn)
        avail.remove_peer(churn)
        assert [avail.count(i) for i in range(4)] == [1, 1, 0, 0]
        # The bucket index must agree with the flat counts afterwards.
        assert avail.rarest_subset(0b1111) == 0b1100  # counts 0 are rarest

    def test_rarest_subset_returns_full_tie_set(self):
        avail = AvailabilityMap(4)
        avail.add_piece(0)
        avail.add_piece(0)
        avail.add_piece(1)
        avail.add_piece(2)
        assert avail.rarest_subset(0b1111) == 0b1000  # piece 3: count 0
        assert avail.rarest_subset(0b0111) == 0b0110  # pieces 1, 2 tie
        assert avail.rarest_subset(0b0001) == 0b0001
        assert avail.rarest_subset(0) == 0


class TestRarestFirst:
    def test_picks_rarest(self):
        avail = AvailabilityMap(4)
        for _ in range(5):
            avail.add_piece(0)
        avail.add_piece(1)
        rng = random.Random(0)
        assert rarest_first([0, 1], avail, rng) == 1

    def test_empty_candidates(self):
        avail = AvailabilityMap(4)
        assert rarest_first([], avail, random.Random(0)) is None

    def test_tie_broken_randomly_among_rarest(self):
        avail = AvailabilityMap(4)
        avail.add_piece(3)  # piece 3 common; 0,1,2 all zero
        rng = random.Random(1)
        picks = {rarest_first([0, 1, 2, 3], avail, rng) for _ in range(50)}
        assert picks == {0, 1, 2}

    def test_accepts_candidate_bitmask(self):
        avail = AvailabilityMap(4)
        for _ in range(5):
            avail.add_piece(0)
        avail.add_piece(1)
        assert rarest_first(0b0011, avail, random.Random(0)) == 1
        assert rarest_first(0, avail, random.Random(0)) is None

    def test_unique_rarest_consumes_no_randomness(self):
        avail = AvailabilityMap(4)
        avail.add_piece(0)
        rng = random.Random(5)
        state = rng.getstate()
        assert rarest_first([0, 1], avail, rng) == 1
        assert rng.getstate() == state  # no tie: no draw

    def test_tie_draw_sees_ascending_piece_order(self):
        """Determinism contract: the tie list handed to ``rng.choice``
        is in ascending piece order on every Python version — pre-fix
        it inherited ``set`` iteration order, which is not portable."""

        class RecordingRng:
            def __init__(self):
                self.seen = None

            def choice(self, seq):
                self.seen = list(seq)
                return seq[0]

        avail = AvailabilityMap(8)
        avail.add_piece(2)  # pieces 1, 3, 6 stay at count 0
        rng = RecordingRng()
        assert rarest_first({6, 1, 3, 2}, avail, rng) == 1
        assert rng.seen == [1, 3, 6]

    @given(st.sets(st.integers(0, 15), min_size=1), st.data())
    @settings(max_examples=40)
    def test_always_returns_minimum_count(self, candidates, data):
        avail = AvailabilityMap(16)
        for piece in range(16):
            for _ in range(data.draw(st.integers(0, 4))):
                avail.add_piece(piece)
        pick = rarest_first(candidates, avail, random.Random(0))
        assert pick in candidates
        assert avail.count(pick) == min(avail.count(c) for c in candidates)
