"""Tests for upload-budget credit accounting."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.sim.bandwidth import UploadBudget


class TestBasics:
    def test_integer_capacity(self):
        budget = UploadBudget(3.0)
        assert budget.new_round() == 3
        budget.consume(3)
        assert not budget.can_send()

    def test_fractional_capacity_accumulates(self):
        """Capacity 0.5 sends one piece every other round."""
        budget = UploadBudget(0.5)
        sent = 0
        for _ in range(10):
            budget.new_round()
            while budget.can_send():
                budget.consume()
                sent += 1
        assert sent == 5

    def test_zero_capacity_never_sends(self):
        budget = UploadBudget(0.0)
        for _ in range(5):
            budget.new_round()
        assert not budget.can_send()
        assert budget.available() == 0

    def test_overdraft_rejected(self):
        budget = UploadBudget(1.0)
        budget.new_round()
        budget.consume()
        with pytest.raises(SimulationError):
            budget.consume()

    def test_consume_zero_rejected(self):
        budget = UploadBudget(2.0)
        budget.new_round()
        with pytest.raises(SimulationError):
            budget.consume(0)

    def test_rejects_negative_capacity(self):
        with pytest.raises(ConfigurationError):
            UploadBudget(-1.0)

    def test_rejects_infinite_capacity(self):
        with pytest.raises(ConfigurationError):
            UploadBudget(float("inf"))

    def test_total_consumed_tracked(self):
        budget = UploadBudget(2.0)
        budget.new_round()
        budget.consume(2)
        budget.new_round()
        budget.consume(1)
        assert budget.total_consumed == 3


class TestBurstCap:
    def test_idle_rounds_do_not_bank_unbounded_credit(self):
        """An idle peer cannot save up a giant burst (cap: 2 rounds)."""
        budget = UploadBudget(3.0)
        for _ in range(100):
            budget.new_round()
        assert budget.available() <= 6

    def test_small_capacity_can_still_reach_one(self):
        budget = UploadBudget(0.1)
        for _ in range(20):
            budget.new_round()
        assert budget.available() >= 1

    @given(st.floats(min_value=0.05, max_value=10.0), st.integers(1, 60))
    @settings(max_examples=40)
    def test_long_run_rate_bounded_by_capacity(self, capacity, rounds):
        """Consumed pieces never exceed capacity * rounds + burst cap."""
        budget = UploadBudget(capacity)
        for _ in range(rounds):
            budget.new_round()
            while budget.can_send():
                budget.consume()
        assert budget.total_consumed <= capacity * rounds + max(
            2.0 * capacity, 1.0)


class TestExactAccrual:
    """The integer-scaled accumulator versus an exact ``Fraction``
    oracle — the regression class for the old float+epsilon accrual,
    which minted a piece early for capacities like 1/3."""

    def test_one_third_capacity_does_not_mint_early(self):
        # float(1/3) < 1/3 exactly, so three rounds of accrual sum to
        # just under 1.0; the old `credits + 1e-9 >= 1` check minted a
        # piece at round 3 anyway.  Exact arithmetic sends the first
        # piece at round 4, where the burst cap (max(2c, 1) = 1) clamps
        # credits to exactly 1 and the spend resets them to 0 — so the
        # whole cycle repeats with period 4.
        budget = UploadBudget(1.0 / 3.0)
        sends = []
        for round_no in range(1, 13):
            budget.new_round()
            while budget.can_send():
                budget.consume()
                sends.append(round_no)
        assert sends == [4, 8, 12]

    @given(st.floats(min_value=0.01, max_value=8.0), st.integers(1, 80))
    @settings(max_examples=60)
    def test_matches_fraction_oracle(self, capacity, rounds):
        """Greedy draining matches a from-scratch Fraction simulation
        of the same contract (accrue, cap at max(2c, 1), floor)."""
        budget = UploadBudget(capacity)
        exact_capacity = Fraction(*float(capacity).as_integer_ratio())
        cap = max(2 * exact_capacity, Fraction(1))
        credits = Fraction(0)
        consumed = 0
        for _ in range(rounds):
            new_round_avail = budget.new_round()
            credits = min(credits + exact_capacity, cap)
            assert new_round_avail == credits // 1
            assert budget.available() == credits // 1
            while budget.can_send():
                budget.consume()
                credits -= 1
                consumed += 1
            assert credits < 1
            assert not budget.can_send()
        assert budget.total_consumed == consumed
