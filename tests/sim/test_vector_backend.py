"""Backend selection, fallback, and vector/object digest parity.

The pinned-digest and fuzz parity checks live in
``tests/integration``; this file covers the plumbing around the
vector backend — config validation and serialisation, the
``run_simulation`` dispatch with its object-engine fallback, and
parity on the specific feature axes (arrival process, topology,
piece policy, whitewashing, lingering seeds) that the equivalence
config does not vary.
"""

from __future__ import annotations

import warnings
from dataclasses import replace

import pytest

from repro.errors import BackendFallbackError, ConfigurationError
from repro.names import Algorithm
from repro.sim import (FaultConfig, SimulationConfig, VectorSimulation,
                       targeted_attack_for, vector_unsupported_reason)
from repro.sim.metrics import metrics_digest
from repro.sim.runner import run_simulation


def small_config(**overrides) -> SimulationConfig:
    defaults = dict(
        algorithm=Algorithm.TCHAIN,
        n_users=30,
        n_pieces=16,
        max_rounds=80,
        neighbor_count=8,
        seed=5,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestConfigPlumbing:
    def test_default_backend_is_object(self):
        assert small_config().backend == "object"

    def test_with_backend_returns_variant(self):
        config = small_config()
        vector = config.with_backend("vector")
        assert vector.backend == "vector"
        assert config.backend == "object"
        assert vector.with_backend("object") == config

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            small_config(backend="gpu")

    def test_repr_excludes_backend(self):
        """Sweep fingerprints and cache keys are ``repr(config)``; the
        backend is an execution detail with identical results, so it
        must not change a config's identity."""
        config = small_config()
        assert repr(config) == repr(config.with_backend("vector"))
        assert "backend" not in repr(config)

    def test_to_dict_roundtrip_preserves_backend(self):
        config = small_config().with_backend("vector")
        rebuilt = SimulationConfig.from_dict(config.to_dict())
        assert rebuilt.backend == "vector"
        assert rebuilt == config


class TestDispatchAndFallback:
    def test_vector_backend_runs_vector_engine(self):
        config = small_config().with_backend("vector")
        assert vector_unsupported_reason(config) is None
        result = run_simulation(config)
        assert result.metrics.rounds_run > 0

    @pytest.mark.parametrize("unsupported, fragment", [
        (dict(record_transfers=True), "per-transfer"),
    ])
    def test_unsupported_config_warns_and_falls_back(self, unsupported,
                                                     fragment):
        config = replace(small_config(), **unsupported)
        assert fragment in vector_unsupported_reason(config)
        with pytest.warns(RuntimeWarning, match="falling back"):
            fallback = run_simulation(config.with_backend("vector"))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            reference = run_simulation(config)
        assert (metrics_digest(fallback.metrics)
                == metrics_digest(reference.metrics))
        assert fallback.metrics.backend_downgraded == (
            vector_unsupported_reason(config))

    @pytest.mark.parametrize("faults", [
        FaultConfig(crash_hazard=0.05),
        FaultConfig(report_delay_rounds=2),
        FaultConfig(obligation_expiry_rounds=5),
    ])
    def test_all_fault_axes_supported_on_vector(self, faults):
        """PR 9: no fault axis forces the object-engine fallback."""
        config = small_config(faults=faults)
        assert vector_unsupported_reason(config) is None
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = run_simulation(config.with_backend("vector"))
        assert result.metrics.backend_downgraded is None

    def test_guarded_config_reports_reason(self):
        config = small_config().with_guards("cheap")
        assert "guards" in vector_unsupported_reason(config)

    def test_obs_config_reports_reason(self):
        config = small_config().with_obs(trace=True)
        assert "observability" in vector_unsupported_reason(config)

    def test_object_backend_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_simulation(small_config())


class TestBackendFallbackPolicy:
    """The explicit backend_fallback policy on unsupported configs."""

    def _unsupported(self, **extra):
        return small_config(record_transfers=True, **extra).with_backend(
            "vector")

    def test_default_policy_is_warn(self):
        assert small_config().backend_fallback == "warn"

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            small_config(backend_fallback="loud")

    def test_repr_excludes_policy(self):
        config = small_config()
        assert repr(config) == repr(config.with_backend_fallback("silent"))

    def test_error_policy_raises(self):
        config = self._unsupported().with_backend_fallback("error")
        with pytest.raises(BackendFallbackError, match="per-transfer"):
            run_simulation(config)

    def test_silent_policy_falls_back_quietly(self):
        config = self._unsupported().with_backend_fallback("silent")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = run_simulation(config)
        assert result.metrics.backend_downgraded is not None

    def test_warn_policy_warns_and_records_reason(self):
        config = self._unsupported().with_backend_fallback("warn")
        with pytest.warns(RuntimeWarning, match="falling back"):
            result = run_simulation(config)
        assert "per-transfer" in result.metrics.backend_downgraded

    def test_error_policy_is_inert_on_supported_configs(self):
        config = small_config(
            faults=FaultConfig(crash_hazard=0.02)).with_backend(
            "vector").with_backend_fallback("error")
        result = run_simulation(config)
        assert result.metrics.backend_downgraded is None

    def test_to_dict_roundtrip_preserves_policy(self):
        config = small_config().with_backend_fallback("error")
        rebuilt = SimulationConfig.from_dict(config.to_dict())
        assert rebuilt.backend_fallback == "error"


def _parity(config: SimulationConfig) -> None:
    object_digest = metrics_digest(run_simulation(config).metrics)
    vector_digest = metrics_digest(
        VectorSimulation(config.with_backend("vector")).run().metrics)
    assert object_digest == vector_digest


class TestFeatureAxisParity:
    """One digest-parity case per config axis the integration suite's
    equivalence config holds fixed."""

    def test_poisson_arrivals(self):
        _parity(small_config(arrival_process="poisson", arrival_rate=4.0))

    @pytest.mark.parametrize("topology", ["ring", "smallworld"])
    def test_view_topologies(self, topology):
        _parity(small_config(view_topology=topology))

    def test_random_piece_selection(self):
        _parity(small_config(piece_selection="random"))

    def test_whitewashing_freeriders(self):
        _parity(small_config(
            freerider_fraction=0.3,
            attack=replace(targeted_attack_for(Algorithm.TCHAIN),
                           whitewash_interval=15)))

    def test_lingering_seeds(self):
        _parity(small_config(seed_linger_rate=0.5))

    def test_transfer_loss_faults(self):
        _parity(small_config(faults=FaultConfig(transfer_loss_rate=0.3)))

    def test_seeder_outage_faults(self):
        _parity(small_config(faults=FaultConfig(seeder_outage_rate=0.5,
                                                seeder_outage_duration=3)))

    def test_combined_faults(self):
        _parity(small_config(faults=FaultConfig(transfer_loss_rate=0.2,
                                                seeder_outage_rate=0.3)))

    def test_crash_faults(self):
        _parity(small_config(faults=FaultConfig(crash_hazard=0.01)))

    def test_delayed_report_faults(self):
        _parity(small_config(faults=FaultConfig(report_delay_rounds=3)))

    def test_obligation_expiry_faults(self):
        _parity(small_config(faults=FaultConfig(transfer_loss_rate=0.2,
                                                obligation_expiry_rounds=4)))

    def test_all_fault_axes_combined(self):
        _parity(small_config(faults=FaultConfig(
            transfer_loss_rate=0.15, crash_hazard=0.005,
            seeder_outage_rate=0.2, seeder_outage_duration=3,
            report_delay_rounds=2, obligation_expiry_rounds=6)))

    def test_crashes_under_whitewashing_and_delay(self):
        """Delayed reports must survive identity resets: the lineage
        queue credits the *current* id, and crashed lineages drop."""
        _parity(small_config(
            freerider_fraction=0.3,
            attack=replace(targeted_attack_for(Algorithm.TCHAIN),
                           whitewash_interval=15),
            faults=FaultConfig(crash_hazard=0.01, report_delay_rounds=4)))

    def test_propshare_algorithm(self):
        _parity(small_config(algorithm=Algorithm.PROPSHARE,
                             freerider_fraction=0.2,
                             attack=targeted_attack_for(Algorithm.PROPSHARE)))
