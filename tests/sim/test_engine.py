"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.engine import EventEngine


class TestScheduling:
    def test_fires_in_time_order(self):
        engine = EventEngine()
        fired = []
        engine.schedule_at(3.0, lambda e: fired.append("c"))
        engine.schedule_at(1.0, lambda e: fired.append("a"))
        engine.schedule_at(2.0, lambda e: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_fifo_for_equal_times(self):
        engine = EventEngine()
        fired = []
        for label in "abcde":
            engine.schedule_at(1.0, lambda e, x=label: fired.append(x))
        engine.run()
        assert fired == list("abcde")

    def test_clock_advances(self):
        engine = EventEngine()
        seen = []
        engine.schedule_at(5.0, lambda e: seen.append(e.now))
        engine.run()
        assert seen == [5.0]
        assert engine.now == 5.0

    def test_schedule_in_relative(self):
        engine = EventEngine(start_time=10.0)
        seen = []
        engine.schedule_in(2.5, lambda e: seen.append(e.now))
        engine.run()
        assert seen == [12.5]

    def test_cannot_schedule_in_past(self):
        engine = EventEngine(start_time=5.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(4.0, lambda e: None)
        with pytest.raises(SimulationError):
            engine.schedule_in(-1.0, lambda e: None)

    def test_events_can_schedule_events(self):
        engine = EventEngine()
        fired = []

        def first(e):
            fired.append("first")
            e.schedule_in(1.0, lambda e2: fired.append("second"))

        engine.schedule_at(0.0, first)
        engine.run()
        assert fired == ["first", "second"]

    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1,
                    max_size=50))
    @settings(max_examples=30)
    def test_arbitrary_schedules_fire_sorted(self, times):
        engine = EventEngine()
        fired = []
        for t in times:
            engine.schedule_at(t, lambda e, t=t: fired.append(t))
        engine.run()
        assert fired == sorted(times)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        engine = EventEngine()
        fired = []
        event = engine.schedule_at(1.0, lambda e: fired.append("x"))
        event.cancel()
        engine.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        engine = EventEngine()
        keep = engine.schedule_at(1.0, lambda e: None)
        drop = engine.schedule_at(2.0, lambda e: None)
        drop.cancel()
        assert engine.pending == 1
        assert keep.time == 1.0


class TestPeriodic:
    def test_fires_at_interval(self):
        engine = EventEngine()
        ticks = []
        engine.schedule_every(1.0, lambda e: ticks.append(e.now))
        engine.run_until(5.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_custom_start_delay(self):
        engine = EventEngine()
        ticks = []
        engine.schedule_every(2.0, lambda e: ticks.append(e.now),
                              start_delay=0.5)
        engine.run_until(5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_rejects_nonpositive_interval(self):
        engine = EventEngine()
        with pytest.raises(SimulationError):
            engine.schedule_every(0.0, lambda e: None)

    def test_stop_halts_periodic(self):
        engine = EventEngine()
        ticks = []

        def tick(e):
            ticks.append(e.now)
            if len(ticks) == 3:
                e.stop()

        engine.schedule_every(1.0, tick)
        engine.run_until(100.0)
        assert ticks == [1.0, 2.0, 3.0]


class TestPeriodicHandle:
    def test_cancel_stops_whole_chain(self):
        engine = EventEngine()
        ticks = []
        handle = engine.schedule_every(1.0, lambda e: ticks.append(e.now))
        engine.run_until(3.0)
        handle.cancel()
        engine.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert engine.pending == 0  # the chained event was cancelled too

    def test_cancel_before_first_fire(self):
        engine = EventEngine()
        ticks = []
        handle = engine.schedule_every(1.0, lambda e: ticks.append(e.now))
        handle.cancel()
        engine.run_until(5.0)
        assert ticks == []

    def test_cancel_inside_own_callback(self):
        engine = EventEngine()
        ticks = []
        handle = engine.schedule_every(1.0, lambda e: ticks.append(e.now))

        def stopper(e):
            if len(ticks) == 2:
                handle.cancel()

        # Fires after the tick at each integer time (FIFO ordering).
        engine.schedule_every(1.0, stopper)
        engine.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_cancel_is_idempotent(self):
        engine = EventEngine()
        handle = engine.schedule_every(1.0, lambda e: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled
        engine.run_until(3.0)

    def test_handle_name_preserved(self):
        engine = EventEngine()
        handle = engine.schedule_every(1.0, lambda e: None, name="round")
        assert handle.name == "round"

    def test_two_chains_cancel_independently(self):
        engine = EventEngine()
        ticks = {"a": 0, "b": 0}
        a = engine.schedule_every(1.0, lambda e: ticks.__setitem__(
            "a", ticks["a"] + 1))
        engine.schedule_every(1.0, lambda e: ticks.__setitem__(
            "b", ticks["b"] + 1))
        engine.run_until(2.0)
        a.cancel()
        engine.run_until(5.0)
        assert ticks == {"a": 2, "b": 5}


class TestPendingCounter:
    def test_counts_scheduled_events(self):
        engine = EventEngine()
        for t in range(4):
            engine.schedule_at(float(t), lambda e: None)
        assert engine.pending == 4
        engine.run()
        assert engine.pending == 0

    def test_cancel_after_fire_does_not_double_decrement(self):
        engine = EventEngine()
        event = engine.schedule_at(1.0, lambda e: None)
        keeper = engine.schedule_at(2.0, lambda e: None)
        engine.run_until(1.5)
        event.cancel()  # already fired: must be a no-op
        assert engine.pending == 1
        assert keeper.time == 2.0

    def test_double_cancel_decrements_once(self):
        engine = EventEngine()
        engine.schedule_at(1.0, lambda e: None)
        drop = engine.schedule_at(2.0, lambda e: None)
        drop.cancel()
        drop.cancel()
        assert engine.pending == 1

    def test_periodic_chain_keeps_one_pending(self):
        engine = EventEngine()
        engine.schedule_every(1.0, lambda e: None)
        engine.run_until(5.0)
        assert engine.pending == 1  # exactly the next chained tick


class TestRunUntil:
    def test_does_not_fire_future_events(self):
        engine = EventEngine()
        fired = []
        engine.schedule_at(1.0, lambda e: fired.append(1))
        engine.schedule_at(10.0, lambda e: fired.append(10))
        engine.run_until(5.0)
        assert fired == [1]
        assert engine.now == 5.0
        engine.run_until(20.0)
        assert fired == [1, 10]

    def test_stop_does_not_fast_forward_clock(self):
        """Regression: ``stop()`` used to jump ``now`` to ``end_time``.

        A run halted early must keep the clock at the last fired event
        — fast-forwarding let an early-terminating simulation report a
        finish time it never reached.
        """
        engine = EventEngine()
        engine.schedule_at(1.0, lambda e: e.stop())
        engine.schedule_at(9.0, lambda e: None)
        engine.run_until(100.0)
        assert engine.now == 1.0

    def test_exhausted_queue_fast_forwards_clock(self):
        engine = EventEngine()
        engine.schedule_at(1.0, lambda e: None)
        engine.run_until(100.0)
        assert engine.now == 100.0

    def test_empty_horizon_fast_forwards_clock(self):
        engine = EventEngine()
        engine.schedule_at(50.0, lambda e: None)
        engine.run_until(10.0)  # nothing due before the horizon
        assert engine.now == 10.0

    def test_resume_after_stop_continues(self):
        engine = EventEngine()
        fired = []
        engine.schedule_at(1.0, lambda e: e.stop())
        engine.schedule_at(2.0, lambda e: fired.append(e.now))
        engine.run_until(100.0)
        assert engine.now == 1.0
        engine.run_until(100.0)
        assert fired == [2.0]
        assert engine.now == 100.0

    def test_max_events_guard(self):
        engine = EventEngine()
        engine.schedule_every(0.001, lambda e: None)
        with pytest.raises(SimulationError):
            engine.run_until(1000.0, max_events=50)

    def test_usable_after_max_events_exhaustion(self):
        engine = EventEngine()
        handle = engine.schedule_every(0.001, lambda e: None)
        with pytest.raises(SimulationError):
            engine.run_until(1000.0, max_events=50)
        handle.cancel()
        fired = []
        engine.schedule_in(1.0, lambda e: fired.append(e.now))
        engine.run()
        assert len(fired) == 1

    def test_run_guard(self):
        engine = EventEngine()

        def reschedule(e):
            e.schedule_in(0.1, reschedule)

        engine.schedule_at(0.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert EventEngine().step() is False

    def test_events_fired_counter(self):
        engine = EventEngine()
        for t in range(5):
            engine.schedule_at(float(t), lambda e: None)
        engine.run()
        assert engine.events_fired == 5


class TestEventMetadata:
    def test_event_names_preserved(self):
        engine = EventEngine()
        event = engine.schedule_at(1.0, lambda e: None, name="arrival:7")
        assert event.name == "arrival:7"

    def test_schedule_at_now_is_allowed(self):
        engine = EventEngine(start_time=3.0)
        fired = []
        engine.schedule_at(3.0, lambda e: fired.append(e.now))
        engine.run()
        assert fired == [3.0]

    def test_run_until_exact_boundary_fires(self):
        engine = EventEngine()
        fired = []
        engine.schedule_at(5.0, lambda e: fired.append(5))
        engine.run_until(5.0)
        assert fired == [5]

    def test_interleaved_run_until_segments(self):
        engine = EventEngine()
        fired = []
        for t in (1.0, 2.0, 3.0, 4.0):
            engine.schedule_at(t, lambda e, t=t: fired.append(t))
        engine.run_until(2.0)
        engine.run_until(3.5)
        engine.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_cancel_inside_callback(self):
        engine = EventEngine()
        fired = []
        later = engine.schedule_at(2.0, lambda e: fired.append("later"))
        engine.schedule_at(1.0, lambda e: later.cancel())
        engine.run()
        assert fired == []
