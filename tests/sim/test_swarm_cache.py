"""Tests for the swarm's incrementally maintained needy-neighbor cache.

The cache serves the hot-path question "which neighbors still need
something I can provide" without recomputing it per call. These tests
pin the invalidation contract: monotone gains (usable piece, pending
piece) repair cached lists in place; shrink events (pending drops) and
membership churn (departure, crash, whitewashing) discard them. Every
assertion compares against what an eager recomputation would return,
because the seed-equivalence tests require the cache to be invisible.
"""

from __future__ import annotations

import random

from repro.sim.peer import Obligation, Peer
from repro.sim.swarm import Swarm


def make_swarm(neighbor_count=10, n_pieces=8, seed=0) -> Swarm:
    return Swarm(n_pieces, neighbor_count, random.Random(seed))


def add_peer(swarm, capacity=1.0, **kwargs) -> Peer:
    peer = Peer(swarm.allocate_id(), capacity, swarm.n_pieces, **kwargs)
    swarm.add_peer(peer)
    return peer


def give_piece(swarm: Swarm, peer: Peer, piece: int) -> None:
    if peer.add_usable_piece(piece):
        swarm.on_piece_gained(peer, piece)


class TestPieceGainRepair:
    def test_satisfied_target_leaves_cached_list(self):
        swarm = make_swarm()
        uploader = add_peer(swarm)
        a = add_peer(swarm)
        b = add_peer(swarm)
        give_piece(swarm, uploader, 0)
        assert swarm.needy_neighbors(uploader) == [a.peer_id, b.peer_id]
        # ``a`` obtains the only piece the uploader could offer: the
        # cached list must shed it without a full recomputation.
        give_piece(swarm, a, 0)
        assert swarm.needy_neighbors(uploader) == [b.peer_id]

    def test_target_still_needy_stays_cached(self):
        swarm = make_swarm()
        uploader = add_peer(swarm)
        a = add_peer(swarm)
        give_piece(swarm, uploader, 0)
        give_piece(swarm, uploader, 1)
        assert swarm.needy_neighbors(uploader) == [a.peer_id]
        give_piece(swarm, a, 0)  # still needs piece 1
        assert swarm.needy_neighbors(uploader) == [a.peer_id]

    def test_completed_target_leaves_every_cached_list(self):
        swarm = make_swarm()
        uploader = add_peer(swarm)
        a = add_peer(swarm)
        give_piece(swarm, uploader, 0)
        for piece in range(1, swarm.n_pieces):
            give_piece(swarm, a, piece)
        assert swarm.needy_neighbors(uploader) == [a.peer_id]
        give_piece(swarm, a, 0)  # completes the download
        assert swarm.needy_neighbors(uploader) == []

    def test_gainers_own_uploader_list_grows(self):
        swarm = make_swarm()
        uploader = add_peer(swarm)
        a = add_peer(swarm)
        assert a.peer_id not in swarm.needy_neighbors(uploader)
        # The uploader's first piece makes ``a`` needy: the gainer's
        # own (cached, empty) uploader entry must be discarded.
        give_piece(swarm, uploader, 3)
        assert swarm.needy_neighbors(uploader) == [a.peer_id]


class TestPendingInvalidations:
    def test_pending_piece_counts_as_held(self):
        swarm = make_swarm()
        uploader = add_peer(swarm)
        a = add_peer(swarm)
        give_piece(swarm, uploader, 2)
        assert swarm.needy_neighbors(uploader) == [a.peer_id]
        a.add_pending_piece(2, Obligation(uploader.peer_id, 2, None, 0))
        swarm.on_pending_added(a)
        assert swarm.needy_neighbors(uploader) == []

    def test_pending_drop_restores_neediness(self):
        swarm = make_swarm()
        uploader = add_peer(swarm)
        a = add_peer(swarm)
        give_piece(swarm, uploader, 2)
        swarm.needy_neighbors(uploader)  # populate the cache
        a.add_pending_piece(2, Obligation(uploader.peer_id, 2, None, 0))
        swarm.on_pending_added(a)
        # Dropping the pending piece shrinks the held set, which may
        # re-add peers to needy lists: requires the conservative clear.
        a.drop_pending_piece(2)
        swarm.note_state_changed()
        assert swarm.needy_neighbors(uploader) == [a.peer_id]


class TestMembershipInvalidations:
    def test_departure_removes_from_cached_list(self):
        swarm = make_swarm()
        uploader = add_peer(swarm)
        a = add_peer(swarm)
        b = add_peer(swarm)
        give_piece(swarm, uploader, 0)
        assert swarm.needy_neighbors(uploader) == [a.peer_id, b.peer_id]
        swarm.remove_peer(a.peer_id)  # departure or crash
        assert swarm.needy_neighbors(uploader) == [b.peer_id]

    def test_whitewash_replaces_id_in_needy_list(self):
        swarm = make_swarm()
        uploader = add_peer(swarm)
        freerider = add_peer(swarm, is_freerider=True)
        give_piece(swarm, uploader, 0)
        old_id = freerider.peer_id
        assert swarm.needy_neighbors(uploader) == [old_id]
        new_id = swarm.reset_identity(freerider)
        result = swarm.needy_neighbors(uploader)
        assert old_id not in result
        assert new_id in result

    def test_arrival_joins_needy_list(self):
        swarm = make_swarm()
        uploader = add_peer(swarm)
        give_piece(swarm, uploader, 0)
        assert swarm.needy_neighbors(uploader) == []
        newcomer = add_peer(swarm)
        assert swarm.needy_neighbors(uploader) == [newcomer.peer_id]


class TestCacheContract:
    def test_returned_list_is_a_fresh_copy(self):
        swarm = make_swarm()
        uploader = add_peer(swarm)
        a = add_peer(swarm)
        give_piece(swarm, uploader, 0)
        first = swarm.needy_neighbors(uploader)
        first.clear()  # strategies may mutate their copy freely
        assert swarm.needy_neighbors(uploader) == [a.peer_id]

    def test_state_version_bumps_on_each_mutation_kind(self):
        swarm = make_swarm()
        peer = add_peer(swarm)
        v0 = swarm.state_version
        give_piece(swarm, peer, 0)
        v1 = swarm.state_version
        swarm.on_pending_added(peer)
        v2 = swarm.state_version
        swarm.note_state_changed()
        v3 = swarm.state_version
        add_peer(swarm)
        v4 = swarm.state_version
        assert v0 < v1 < v2 < v3 < v4

    def test_cache_matches_eager_recomputation_under_churn(self):
        """Randomised interleaving: cached answers == eager answers."""
        swarm = make_swarm(neighbor_count=4, n_pieces=6, seed=1)
        rng = random.Random(99)
        peers = [add_peer(swarm) for _ in range(8)]
        for step in range(200):
            actor = rng.choice(peers)
            if actor.peer_id not in swarm.peers:
                continue
            piece = rng.randrange(swarm.n_pieces)
            if rng.random() < 0.5 and actor.needs_piece(piece):
                actor.add_usable_piece(piece)
                swarm.on_piece_gained(actor, piece)
            uploader = rng.choice(peers)
            if uploader.peer_id not in swarm.peers:
                continue
            expected = [
                pid for pid in sorted(swarm.neighbors(uploader.peer_id))
                if not swarm.peers[pid].complete
                and not swarm.peers[pid].is_seeder
                and uploader.pieces.mask
                & ~swarm.peers[pid].held_or_pending_mask()
            ]
            assert swarm.needy_neighbors(uploader) == expected
