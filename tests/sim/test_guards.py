"""Tests for the runtime guard subsystem.

Covers the invariant registry (via targeted state corruption), the
stall watchdog (degrade and raise modes), crash-forensics bundles,
and the bundle replay tool. Corruptions are injected through scheduled
events so the guards observe them exactly as they would a genuine bug.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.errors import (ConfigurationError, InvariantViolationError,
                          SimulationError, SimulationStalled)
from repro.guards import BUNDLE_VERSION, load_bundle, replay
from repro.names import Algorithm
from repro.sim import GuardConfig, SimulationConfig, run_simulation
from repro.sim.metrics import metrics_digest
from repro.sim.guards import GUARD_CATALOGUE
from repro.sim.runner import Simulation


def _config(tmp_path, algorithm=Algorithm.BITTORRENT, mode="full",
            seed=7, **overrides):
    config = SimulationConfig(
        algorithm=algorithm, n_users=20, n_pieces=8, seed=seed,
        flash_crowd_duration=4.0, neighbor_count=8, max_rounds=40)
    return config.with_guards(mode, bundle_dir=str(tmp_path), **overrides)


def _inject(sim, time, corrupt) -> None:
    """Apply ``corrupt(sim)`` mid-run via a scheduled event."""
    sim.engine.schedule_at(time, lambda _engine: corrupt(sim),
                           name="inject-corruption")


def _mint_piece(sim) -> None:
    """Give some incomplete peer a usable piece it never downloaded."""
    for peer in sim._all_peers:
        missing = [i for i in range(sim.config.n_pieces)
                   if i not in peer.pieces and i not in peer.pending]
        if missing:
            peer.add_usable_piece(missing[0])
            return
    raise AssertionError("no incomplete peer to corrupt")


class TestGuardConfig:
    def test_defaults_off(self):
        config = GuardConfig()
        assert config.mode == "off"
        assert not config.enabled

    @pytest.mark.parametrize("kwargs", [
        {"mode": "paranoid"},
        {"check_interval": 0},
        {"watchdog_window": 0},
        {"watchdog_window": -5},
        {"watchdog_action": "explode"},
        {"recent_transfers": -1},
    ])
    def test_rejects_bad_settings(self, kwargs):
        with pytest.raises(ConfigurationError):
            GuardConfig(mode=kwargs.pop("mode", "cheap"), **kwargs)

    def test_watchdog_window_error_is_actionable(self):
        with pytest.raises(ConfigurationError, match="watchdog_window"):
            GuardConfig(mode="cheap", watchdog_window=0)

    def test_with_guards_helper(self, tmp_path):
        config = _config(tmp_path, mode="cheap", watchdog_window=17)
        assert config.guards.mode == "cheap"
        assert config.guards.watchdog_window == 17
        assert config.guards.bundle_dir == str(tmp_path)

    def test_catalogue_covers_both_tiers(self):
        tiers = {tier for tier, _ in GUARD_CATALOGUE.values()}
        assert tiers == {"cheap", "full"}
        assert "piece-conservation" in GUARD_CATALOGUE


class TestCleanRuns:
    @pytest.mark.parametrize("mode", ["cheap", "full"])
    def test_guarded_run_is_clean(self, tmp_path, mode):
        result = run_simulation(_config(tmp_path, mode=mode))
        assert not result.metrics.degraded
        assert result.metrics.stall is None
        assert result.metrics.bundle_path is None
        assert list(tmp_path.iterdir()) == []  # no bundles written

    def test_guards_do_not_change_the_digest(self, tmp_path):
        bare = run_simulation(_config(tmp_path, mode="off"))
        guarded = run_simulation(_config(tmp_path, mode="full"))
        assert metrics_digest(bare.metrics) == metrics_digest(guarded.metrics)


class TestCorruptionDetection:
    def test_minted_piece_trips_conservation(self, tmp_path):
        sim = Simulation(_config(tmp_path))
        _inject(sim, 5.5, _mint_piece)
        with pytest.raises(InvariantViolationError) as excinfo:
            sim.run()
        exc = excinfo.value
        codes = {v.code for v in exc.violations}
        assert "piece-conservation" in codes
        assert exc.bundle_path is not None
        assert f"[bundle: {exc.bundle_path}]" in str(exc)

    def test_ledger_skew_trips_balance(self, tmp_path):
        def skew(sim):
            sim._all_peers[0].uploaded_to[999] += 5

        sim = Simulation(_config(tmp_path))
        _inject(sim, 5.5, skew)
        with pytest.raises(InvariantViolationError) as excinfo:
            sim.run()
        assert {v.code for v in excinfo.value.violations} == {"ledger-balance"}

    def test_nan_reputation_trips_bounds(self, tmp_path):
        def poison(sim):
            board = sim.swarm.reputation
            board._scores[next(iter(sim.swarm.peers))] = float("nan")

        sim = Simulation(_config(tmp_path, algorithm=Algorithm.REPUTATION))
        _inject(sim, 5.5, poison)
        with pytest.raises(InvariantViolationError) as excinfo:
            sim.run()
        codes = {v.code for v in excinfo.value.violations}
        assert codes == {"reputation-bounds"}

    def test_stale_pending_mask_trips_tchain(self, tmp_path):
        def stale(sim):
            # Set a mask bit with no backing pending entry — the exact
            # footprint of a cache-update bug in the pending machinery.
            # The least-advanced peer stays in the swarm long enough for
            # the end-of-round sweep to see the corruption.
            peer = min(sim._all_peers, key=lambda p: len(p.pieces))
            for i in range(sim.config.n_pieces):
                if not peer.pending_mask & (1 << i):
                    peer.pending_mask |= 1 << i
                    return

        sim = Simulation(_config(tmp_path, algorithm=Algorithm.TCHAIN))
        _inject(sim, 5.5, stale)
        with pytest.raises(InvariantViolationError) as excinfo:
            sim.run()
        codes = {v.code for v in excinfo.value.violations}
        assert "tchain-consistency" in codes

    def test_negative_fault_counter_trips_metrics(self, tmp_path):
        def negate(sim):
            faults = sim.collector.faults
            setattr(faults, next(iter(vars(faults))), -3)

        sim = Simulation(_config(tmp_path, mode="cheap"))
        _inject(sim, 5.5, negate)
        with pytest.raises(InvariantViolationError) as excinfo:
            sim.run()
        assert {v.code for v in excinfo.value.violations} == {"metrics-sanity"}


class TestBundles:
    def test_violation_bundle_contents(self, tmp_path):
        sim = Simulation(_config(tmp_path))
        _inject(sim, 5.5, _mint_piece)
        with pytest.raises(InvariantViolationError) as excinfo:
            sim.run()
        payload = load_bundle(excinfo.value.bundle_path)
        assert payload["bundle_version"] == BUNDLE_VERSION
        assert payload["kind"] == "violation"
        assert payload["algorithm"] == Algorithm.BITTORRENT.value
        assert payload["seed"] == 7
        assert payload["config"]["n_users"] == 20
        assert payload["violations"]
        assert payload["violations"][0]["code"] in GUARD_CATALOGUE
        assert payload["peers"], "per-peer summaries missing"
        assert "engine" in payload and "queue_tail" in payload["engine"]
        assert isinstance(payload["recent_transfers"], list)

    def test_bundle_write_is_atomic(self, tmp_path):
        sim = Simulation(_config(tmp_path))
        _inject(sim, 5.5, _mint_piece)
        with pytest.raises(InvariantViolationError):
            sim.run()
        names = [p.name for p in tmp_path.iterdir()]
        assert all(not name.endswith(".tmp") for name in names)
        assert all(name.startswith("bundle-violation-") for name in names)

    def test_bundle_version_is_checked(self, tmp_path):
        path = tmp_path / "bundle-bogus.json"
        path.write_text(json.dumps({"bundle_version": 999, "kind": "x"}))
        with pytest.raises(ValueError, match="bundle_version"):
            load_bundle(str(path))

    def test_unhandled_crash_writes_exception_bundle(self, tmp_path):
        def jump_clock(sim):
            sim.engine._now = 1e9  # next pop sees time running backwards

        sim = Simulation(_config(tmp_path, mode="cheap"))
        _inject(sim, 4.5, jump_clock)
        with pytest.raises(SimulationError) as excinfo:
            sim.run()
        exc = excinfo.value
        assert exc.bundle_path is not None
        assert f"[bundle: {exc.bundle_path}]" in str(exc)
        payload = load_bundle(exc.bundle_path)
        assert payload["kind"] == "exception"
        assert payload["error"]["type"] == "SimulationError"
        assert "traceback" in payload["error"]


class TestWatchdog:
    @staticmethod
    def _freeze(sim):
        for peer in list(sim.swarm.peers.values()) + sim._seeders:
            peer.offline_until = 10 ** 9

    def test_degrade_mode_finalizes_with_partial_metrics(self, tmp_path):
        config = _config(tmp_path, mode="cheap", watchdog_window=8)
        sim = Simulation(config)
        _inject(sim, 3.5, self._freeze)
        result = sim.run()
        metrics = result.metrics
        assert metrics.degraded
        assert metrics.stall is not None
        assert metrics.stall["window"] == 8
        assert metrics.stall["n_downloaders"] > 0
        assert metrics.rounds_run < config.max_rounds
        payload = load_bundle(metrics.bundle_path)
        assert payload["kind"] == "stall"

    def test_raise_mode_raises_stalled(self, tmp_path):
        sim = Simulation(_config(tmp_path, mode="cheap", watchdog_window=8,
                                 watchdog_action="raise"))
        _inject(sim, 3.5, self._freeze)
        with pytest.raises(SimulationStalled) as excinfo:
            sim.run()
        exc = excinfo.value
        assert exc.stall is not None
        assert "[bundle: " in str(exc)
        assert load_bundle(exc.bundle_path)["kind"] == "stall"

    def test_slow_but_alive_swarm_is_not_flagged(self, tmp_path):
        config = _config(tmp_path, mode="cheap", watchdog_window=8)
        result = run_simulation(config)
        assert not result.metrics.degraded


class TestReplay:
    def test_violation_bundle_replays_to_same_failure(self, tmp_path):
        sim = Simulation(_config(tmp_path))
        _inject(sim, 5.5, _mint_piece)
        with pytest.raises(InvariantViolationError) as excinfo:
            sim.run()

        result = replay(excinfo.value.bundle_path,
                        setup=lambda sim: _inject(sim, 5.5, _mint_piece),
                        bundle_dir=str(tmp_path))
        assert result.outcome == "violation"
        assert result.reproduced
        assert "piece-conservation" in result.codes

    def test_stall_bundle_replays_to_same_stall(self, tmp_path):
        sim = Simulation(_config(tmp_path, mode="cheap", watchdog_window=8))
        _inject(sim, 3.5, TestWatchdog._freeze)
        metrics = sim.run().metrics
        assert metrics.degraded

        result = replay(
            metrics.bundle_path,
            setup=lambda sim: _inject(sim, 3.5, TestWatchdog._freeze),
            bundle_dir=str(tmp_path))
        assert result.outcome == "stall"
        assert result.reproduced

    def test_fixed_bug_reports_clean(self, tmp_path):
        sim = Simulation(_config(tmp_path))
        _inject(sim, 5.5, _mint_piece)
        with pytest.raises(InvariantViolationError) as excinfo:
            sim.run()
        # Replay WITHOUT re-applying the corruption: the "bug" is gone,
        # so the replay must come back clean (and say so).
        result = replay(excinfo.value.bundle_path, bundle_dir=str(tmp_path))
        assert result.outcome == "clean"
        assert not result.reproduced

    def test_replay_caps_rounds_near_failure(self, tmp_path):
        sim = Simulation(_config(tmp_path))
        _inject(sim, 5.5, _mint_piece)
        with pytest.raises(InvariantViolationError) as excinfo:
            sim.run()
        result = replay(excinfo.value.bundle_path, bundle_dir=str(tmp_path))
        # The clean replay stops a couple of rounds past the recorded
        # failure instead of running the full original schedule.
        assert result.round_index is not None
        assert result.round_index <= load_bundle(
            excinfo.value.bundle_path)["round_index"] + 2
