"""Stateful property testing of swarm membership and identity churn.

A hypothesis rule-based machine drives arbitrary interleavings of
arrivals, departures, piece grants, and whitewashing resets, checking
after every step the structural invariants the simulator relies on:

* neighbor views are symmetric and only reference active peers;
* piece availability equals the sum over active piece sets;
* identity resets preserve the peer object and its pieces while
  retiring the old id everywhere.
"""

from __future__ import annotations

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.sim.peer import Peer
from repro.sim.swarm import Swarm

N_PIECES = 6


class SwarmMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.swarm = Swarm(N_PIECES, neighbor_count=3,
                           rng=random.Random(1234))
        self.alive = []

    @rule(capacity=st.sampled_from([0.5, 1.0, 2.0]))
    def arrive(self, capacity: float) -> None:
        peer = Peer(self.swarm.allocate_id(), capacity, N_PIECES)
        self.swarm.add_peer(peer)
        self.alive.append(peer)

    @rule(index=st.integers(0, 200), piece=st.integers(0, N_PIECES - 1))
    def grant_piece(self, index: int, piece: int) -> None:
        if not self.alive:
            return
        peer = self.alive[index % len(self.alive)]
        if peer.add_usable_piece(piece):
            self.swarm.on_piece_gained(peer, piece)

    @rule(index=st.integers(0, 200))
    def depart(self, index: int) -> None:
        if not self.alive:
            return
        peer = self.alive.pop(index % len(self.alive))
        self.swarm.remove_peer(peer.peer_id)

    @rule(index=st.integers(0, 200))
    def whitewash(self, index: int) -> None:
        if not self.alive:
            return
        peer = self.alive[index % len(self.alive)]
        old_id = peer.peer_id
        new_id = self.swarm.reset_identity(peer)
        assert new_id != old_id
        assert self.swarm.peer(new_id) is peer

    @invariant()
    def views_symmetric_and_active(self) -> None:
        for pid in self.swarm.active_ids:
            for neighbor in self.swarm.neighbors(pid):
                assert neighbor in self.swarm.peers
                assert pid in self.swarm.neighbors(neighbor)

    @invariant()
    def availability_matches_piece_sets(self) -> None:
        for piece in range(N_PIECES):
            expected = sum(1 for p in self.swarm.peers.values()
                           if piece in p.pieces)
            assert self.swarm.availability.count(piece) == expected

    @invariant()
    def membership_consistent(self) -> None:
        assert {p.peer_id for p in self.alive} == set(self.swarm.peers)


TestSwarmStateful = SwarmMachine.TestCase
TestSwarmStateful.settings = settings(max_examples=40,
                                      stateful_step_count=30,
                                      deadline=None)
