"""Tests for peer state: ledgers, deficits, pending pieces."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.peer import Obligation, Peer


def make_peer(pid=1, capacity=2.0, n_pieces=8, **kwargs) -> Peer:
    return Peer(pid, capacity, n_pieces, **kwargs)


class TestLedgers:
    def test_upload_and_receipt_tracking(self):
        peer = make_peer()
        peer.record_upload(2, pieces=3)
        peer.record_receipt(2, pieces=1)
        assert peer.total_uploaded == 3
        assert peer.total_downloaded == 1
        assert peer.uploaded_to[2] == 3
        assert peer.received_from[2] == 1

    def test_deficit_sign_convention(self):
        """Positive deficit: they owe us; negative: we owe them."""
        peer = make_peer()
        peer.record_upload(5, pieces=2)
        assert peer.deficit(5) == 2
        peer.record_receipt(5, pieces=3)
        assert peer.deficit(5) == -1

    def test_deficit_unknown_peer_zero(self):
        assert make_peer().deficit(99) == 0

    def test_round_receipt_rollover(self):
        peer = make_peer()
        peer.record_receipt(3, pieces=2)
        assert peer.received_last_round.get(3, 0) == 0
        peer.end_round()
        assert peer.received_last_round[3] == 2
        peer.end_round()
        assert peer.received_last_round.get(3, 0) == 0

    def test_unusable_receipt_not_downloaded(self):
        peer = make_peer()
        peer.record_receipt(3, usable=False)
        assert peer.total_downloaded == 0
        assert peer.total_received_raw == 1


class TestPieces:
    def test_seeder_starts_complete(self):
        seeder = make_peer(is_seeder=True)
        assert seeder.complete
        assert seeder.usable_piece_count == 8

    def test_add_usable(self):
        peer = make_peer()
        assert peer.add_usable_piece(3)
        assert not peer.add_usable_piece(3)
        assert peer.usable_piece_count == 1

    def test_needs_piece(self):
        peer = make_peer()
        assert peer.needs_piece(0)
        peer.add_usable_piece(0)
        assert not peer.needs_piece(0)

    def test_needed_pieces_from(self):
        a = make_peer(1)
        b = make_peer(2)
        for piece in (0, 1, 2):
            b.add_usable_piece(piece)
        a.add_usable_piece(1)
        assert a.needed_pieces_from(b) == {0, 2}
        assert a.needs_any_from(b)
        assert not b.needs_any_from(a)


class TestPendingPieces:
    def make_obligation(self, piece=4, uploader=9):
        return Obligation(uploader_id=uploader, piece_id=piece,
                          designated_target=None, created_round=1)

    def test_pending_blocks_need(self):
        peer = make_peer()
        peer.add_pending_piece(4, self.make_obligation())
        assert not peer.needs_piece(4)
        assert 4 not in peer.pieces  # not usable yet
        assert peer.held_or_pending() == {4}

    def test_unlock_makes_usable(self):
        peer = make_peer()
        peer.add_pending_piece(4, self.make_obligation())
        assert peer.unlock_piece(4)
        assert 4 in peer.pieces
        assert peer.pending == {}

    def test_cannot_unlock_unknown(self):
        with pytest.raises(SimulationError):
            make_peer().unlock_piece(4)

    def test_cannot_double_pend(self):
        peer = make_peer()
        peer.add_pending_piece(4, self.make_obligation())
        with pytest.raises(SimulationError):
            peer.add_pending_piece(4, self.make_obligation())

    def test_cannot_pend_held_piece(self):
        peer = make_peer()
        peer.add_usable_piece(4)
        with pytest.raises(SimulationError):
            peer.add_pending_piece(4, self.make_obligation())

    def test_pending_excluded_from_needed_from(self):
        a = make_peer(1)
        b = make_peer(2)
        b.add_usable_piece(0)
        b.add_usable_piece(1)
        a.add_pending_piece(0, self.make_obligation(piece=0))
        assert a.needed_pieces_from(b) == {1}

    def test_mark_usable_counts_download(self):
        peer = make_peer()
        peer.record_receipt(2, usable=False)
        peer.mark_usable()
        assert peer.total_downloaded == 1
