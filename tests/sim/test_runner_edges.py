"""Edge-case tests for the runner's transfer primitives and population.

These exercise the guard rails directly (through the same entry points
strategies use) rather than via full runs.
"""

from __future__ import annotations


from repro.names import Algorithm
from repro.sim.config import CapacityClass, SimulationConfig
from repro.sim.runner import Simulation
from tests.algorithms.conftest import build_sim, give_piece, users_of


class TestTransferGuards:
    def setup_method(self):
        self.sim = build_sim(Algorithm.ALTRUISM, n_users=6, seed=30)
        self.users = users_of(self.sim)
        self.uploader = max(self.users, key=lambda p: p.capacity)
        for piece in range(4):
            give_piece(self.sim, self.uploader, piece)
        self.sim.round_index += 1
        self.uploader.budget.new_round()

    def target(self):
        return next(p for p in self.users if p is not self.uploader)

    def test_requires_budget(self):
        broke = next(p for p in self.users if p is not self.uploader)
        # No new_round() called: zero credit.
        assert not self.sim.transfer_plain(broke, self.uploader.peer_id)

    def test_rejects_unknown_target(self):
        assert not self.sim.transfer_plain(self.uploader, 9999)

    def test_rejects_seeder_target(self):
        seeder_id = self.sim._seeder.peer_id
        assert not self.sim.transfer_plain(self.uploader, seeder_id)

    def test_rejects_self_target(self):
        assert not self.sim.transfer_plain(self.uploader,
                                           self.uploader.peer_id)

    def test_rejects_complete_target(self):
        done = self.target()
        for piece in range(self.sim.config.n_pieces):
            give_piece(self.sim, done, piece)
        assert not self.sim.transfer_plain(self.uploader, done.peer_id)

    def test_rejects_pinned_piece_not_held(self):
        target = self.target()
        assert not self.sim.transfer_plain(self.uploader, target.peer_id,
                                           piece_id=7)  # uploader lacks 7

    def test_rejects_pinned_piece_not_needed(self):
        target = self.target()
        give_piece(self.sim, target, 0)
        assert not self.sim.transfer_plain(self.uploader, target.peer_id,
                                           piece_id=0)

    def test_pinned_piece_delivered(self):
        target = self.target()
        assert self.sim.transfer_plain(self.uploader, target.peer_id,
                                       piece_id=2)
        assert 2 in target.pieces

    def test_budget_consumed_only_on_success(self):
        before = self.uploader.budget.available()
        assert not self.sim.transfer_plain(self.uploader, 9999)
        assert self.uploader.budget.available() == before
        target = self.target()
        assert self.sim.transfer_plain(self.uploader, target.peer_id)
        assert self.uploader.budget.available() == before - 1


class TestPopulationConstruction:
    def test_capacity_fractions_exact(self):
        config = SimulationConfig(
            Algorithm.ALTRUISM, n_users=100,
            capacity_classes=(CapacityClass(0.25, 4.0),
                              CapacityClass(0.75, 1.0)),
            seed=3)
        sim = Simulation(config)
        capacities = sorted(p.capacity for p in sim._all_peers)
        assert capacities.count(1.0) == 75
        assert capacities.count(4.0) == 25

    def test_rounding_remainder_distributed(self):
        config = SimulationConfig(
            Algorithm.ALTRUISM, n_users=10,
            capacity_classes=(CapacityClass(1 / 3, 3.0),
                              CapacityClass(1 / 3, 2.0),
                              CapacityClass(1 / 3, 1.0)),
            seed=3)
        sim = Simulation(config)
        assert len(sim._all_peers) == 10

    def test_freerider_count_exact(self):
        config = SimulationConfig(Algorithm.ALTRUISM, n_users=50,
                                  freerider_fraction=0.22, seed=3)
        sim = Simulation(config)
        assert sum(p.is_freerider for p in sim._all_peers) == 11

    def test_sample_interval_thins_series(self):
        from repro.sim import run_simulation
        from dataclasses import replace
        from repro.experiments.scenarios import smoke_scale

        dense = run_simulation(smoke_scale(Algorithm.ALTRUISM, seed=4)).metrics
        sparse = run_simulation(replace(
            smoke_scale(Algorithm.ALTRUISM, seed=4),
            sample_interval=5)).metrics
        assert 0 < len(sparse.samples) <= len(dense.samples) // 4 + 1


class TestDepartureEffects:
    def test_departed_pieces_leave_availability(self):
        sim = build_sim(Algorithm.ALTRUISM, n_users=4, seed=31)
        peer = users_of(sim)[0]
        for piece in range(sim.config.n_pieces):
            give_piece(sim, peer, piece)
        count_before = sim.swarm.availability.count(0)
        sim._process_departures()
        assert peer.departed
        assert sim.swarm.availability.count(0) == count_before - 1

    def test_completion_time_stamped_once(self):
        sim = build_sim(Algorithm.ALTRUISM, n_users=4, seed=31)
        peer = users_of(sim)[0]
        for piece in range(sim.config.n_pieces):
            give_piece(sim, peer, piece)
        sim._on_piece_gained(peer)
        stamped = peer.completion_time
        sim._process_departures()
        assert peer.completion_time == stamped
