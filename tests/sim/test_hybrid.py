"""Tests for the fluid/event-driven hybrid engine (repro.sim.hybrid).

The two satellite properties from the scaling work are pinned here:
conservation of the population across subswarms plus the fluid
reservoir at *every* coupling round, and determinism of ``hybrid-v1``
digests across ``--jobs`` counts (inline vs. executor-pool paths).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.names import Algorithm
from repro.obs.samplers import SeriesStore
from repro.sim import SimulationConfig, run_simulation
from repro.sim.hybrid import (
    SHARD_ID_STRIDE,
    HybridMetrics,
    hybrid_digest,
    reference_config,
    run_hybrid_simulation,
    shard_config,
    shard_plan,
    shard_seed,
)
from repro.sim.metrics import metrics_digest
from repro.experiments.replicates import (_config_fingerprint,
                                          run_resilient_sweep)


def hybrid_config(**overrides) -> SimulationConfig:
    base = dict(n_users=60, n_pieces=24, neighbor_count=20, max_rounds=250,
                flash_crowd_duration=5.0, seed=3, backend="vector-fast")
    population = overrides.pop("population", 1200)
    n_subswarms = overrides.pop("n_subswarms", 4)
    coupling_interval = overrides.pop("coupling_interval", 10)
    base.update(overrides)
    return SimulationConfig(Algorithm.TCHAIN, **base).with_population(
        population, n_subswarms=n_subswarms,
        coupling_interval=coupling_interval)


@pytest.fixture(scope="module")
def hybrid_metrics() -> HybridMetrics:
    return run_simulation(hybrid_config()).metrics


class TestConfigPlumbing:
    def test_population_must_cover_sampled_mass(self):
        with pytest.raises(ConfigurationError, match="shard weights"):
            hybrid_config(population=100)

    def test_rejects_poisson_arrivals(self):
        with pytest.raises(ConfigurationError, match="flash"):
            SimulationConfig(Algorithm.TCHAIN, n_users=60,
                             arrival_process="poisson",
                             population=1200)

    def test_rejects_record_transfers(self):
        with pytest.raises(ConfigurationError, match="record_transfers"):
            hybrid_config(record_transfers=True)

    def test_lineage_property(self):
        assert hybrid_config().digest_lineage == "hybrid-v1"
        plain = hybrid_config().with_population(None)
        assert plain.population is None
        assert plain.digest_lineage == "fast-v1"

    def test_fingerprint_carries_hybrid_tag(self):
        config = hybrid_config()
        fp = _config_fingerprint(config)
        assert "<hybrid population=1200 n_subswarms=4" in fp
        assert "<digest_lineage=hybrid-v1>" in fp
        # Shard backends are not interchangeable inside a hybrid
        # journal, so the backend is part of the identity.
        assert fp != _config_fingerprint(config.with_backend("object"))
        assert fp != _config_fingerprint(
            config.with_population(2400, n_subswarms=4))


class TestShardPlan:
    def test_weight_and_seeds(self):
        plan = shard_plan(hybrid_config())
        assert plan.population == 1200
        assert plan.subswarm_size == 60
        assert plan.weight == pytest.approx(5.0)
        assert len(set(plan.shard_seeds)) == plan.n_subswarms
        assert plan.shard_seeds == tuple(shard_seed(3, i) for i in range(4))

    def test_shard_seed_is_hash_derived(self):
        # Neighbouring base seeds must not alias each other's shards.
        assert shard_seed(0, 1) != shard_seed(1, 0)

    def test_shard_config_is_the_template(self):
        config = hybrid_config()
        shard = shard_config(config, 2)
        assert shard.population is None
        assert shard.seed == shard_seed(3, 2)
        assert shard.n_users == config.n_users
        assert shard.seeder_capacity == config.seeder_capacity
        assert shard.backend == config.backend

    def test_shard_index_bounds(self):
        with pytest.raises(ConfigurationError):
            shard_config(hybrid_config(), 4)

    def test_reference_preserves_per_capita_seeding(self):
        config = hybrid_config()
        ref = reference_config(config)
        assert ref.population is None
        assert ref.n_users == 1200
        per_capita = (config.n_seeders * config.seeder_capacity
                      / config.n_users)
        assert (ref.n_seeders * ref.seeder_capacity / ref.n_users
                == pytest.approx(per_capita))
        # Seeder *count* scales, not one seeder's capacity: topology
        # parity (a single 20x seeder bottlenecks on its view).
        assert ref.n_seeders == config.n_seeders * 20

    def test_plain_config_rejected(self):
        with pytest.raises(ConfigurationError):
            shard_plan(SimulationConfig(Algorithm.TCHAIN))


class TestHybridRun:
    def test_dispatch_and_lineage(self, hybrid_metrics):
        assert isinstance(hybrid_metrics, HybridMetrics)
        assert hybrid_metrics.digest_lineage == "hybrid-v1"
        assert hybrid_metrics.population == 1200
        assert hybrid_metrics.shard_weight == pytest.approx(5.0)
        assert len(hybrid_metrics.shard_digests) == 4

    def test_conservation_at_every_coupling_round(self, hybrid_metrics):
        # The satellite property: unarrived + present + departed == P
        # at every boundary, and the ledger covers the whole run.
        assert hybrid_metrics.coupling, "no coupling rows recorded"
        assert hybrid_metrics.conservation_errors() == []
        for row in hybrid_metrics.coupling:
            total = row.unarrived + row.active + row.departed
            assert total == pytest.approx(hybrid_metrics.population)
            assert 0.0 <= row.effectiveness <= 1.0
            assert row.seeds >= 0.0
            assert row.residual >= 0.0
        times = [row.time for row in hybrid_metrics.coupling]
        assert times == sorted(times)
        assert times[-1] == hybrid_metrics.rounds_run

    def test_arrivals_complete_after_flash(self, hybrid_metrics):
        config = hybrid_config()
        for row in hybrid_metrics.coupling:
            if row.time >= config.flash_crowd_duration:
                assert row.unarrived == pytest.approx(0.0)
                assert row.arrived == pytest.approx(1200.0)

    def test_population_scale_samples(self, hybrid_metrics):
        for sample in hybrid_metrics.samples:
            assert sample.population == 1200
        final = hybrid_metrics.samples[-1]
        assert final.completed == pytest.approx(
            hybrid_metrics.population_completed(), rel=0.01)

    def test_peers_pooled_with_disjoint_ids(self, hybrid_metrics):
        ids = [p.peer_id for p in hybrid_metrics.peers]
        assert len(ids) == len(set(ids))
        shards = {p.peer_id // SHARD_ID_STRIDE for p in hybrid_metrics.peers}
        assert shards == {0, 1, 2, 3}

    def test_scalar_ratios_are_scale_invariant(self, hybrid_metrics):
        assert 0.0 < hybrid_metrics.completion_fraction() <= 1.0
        assert hybrid_metrics.mean_completion_time() > 0
        assert hybrid_metrics.final_fairness() is not None

    def test_obs_payload_has_coupling_gauges(self, hybrid_metrics):
        store = SeriesStore.from_compact(hybrid_metrics.obs["series"])
        names = store.names()
        for gauge in ("pop_active", "pop_unarrived", "fluid_downloaders",
                      "fluid_residual", "coupling_effectiveness"):
            assert gauge in names
        assert len(store) == len(hybrid_metrics.coupling)

    def test_fluid_residual_bounded(self, hybrid_metrics):
        # Soft cross-check: the mean-field trajectory tracks the event
        # aggregate to within a transient fraction of the population.
        assert 0.0 <= hybrid_metrics.fluid_residual < 0.5

    def test_requires_hybrid_config(self):
        with pytest.raises(ConfigurationError):
            run_hybrid_simulation(SimulationConfig(Algorithm.TCHAIN))


class TestDeterminism:
    def test_digest_identical_across_jobs(self):
        config = hybrid_config()
        inline = run_hybrid_simulation(config).metrics
        pooled = run_hybrid_simulation(config, jobs=2,
                                       start_method="fork").metrics
        assert hybrid_digest(inline) == hybrid_digest(pooled)
        assert metrics_digest(inline) == metrics_digest(pooled)
        assert inline.shard_digests == pooled.shard_digests

    def test_digest_varies_with_seed_and_plan(self):
        base = run_hybrid_simulation(hybrid_config()).metrics
        other_seed = run_hybrid_simulation(hybrid_config(seed=4)).metrics
        assert hybrid_digest(base) != hybrid_digest(other_seed)
        wider = run_hybrid_simulation(
            hybrid_config(population=2400)).metrics
        assert hybrid_digest(base) != hybrid_digest(wider)


class TestSweepIntegration:
    def test_journal_and_outcomes_carry_hybrid_lineage(self, tmp_path):
        config = hybrid_config()
        journal = tmp_path / "journal.jsonl"
        sweep = run_resilient_sweep(config, seeds=[1, 2], jobs=2,
                                    journal_path=str(journal),
                                    start_method="fork")
        assert all(o.ok for o in sweep.outcomes)
        assert {o.digest_lineage for o in sweep.outcomes} == {"hybrid-v1"}
        rows = [json.loads(line) for line in journal.read_text().splitlines()]
        header = rows[0]
        assert header["kind"] == "header"
        assert "<hybrid population=1200" in header["config"]
        done = [r for r in rows if r.get("kind") == "replicate"]
        assert done and all(
            r.get("digest_lineage") == "hybrid-v1" for r in done)

    def test_sweep_digest_deterministic_across_jobs(self, tmp_path):
        config = hybrid_config()
        one = run_resilient_sweep(config, seeds=[5, 6], jobs=1,
                                  start_method="fork")
        two = run_resilient_sweep(config, seeds=[5, 6], jobs=2,
                                  start_method="fork")
        assert one.canonical_digest() == two.canonical_digest()
