"""Tests for simulation configuration objects."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.names import Algorithm
from repro.sim.config import (
    AttackConfig,
    CapacityClass,
    SimulationConfig,
    StrategyParameters,
    targeted_attack_for,
)


class TestCapacityClass:
    def test_valid(self):
        cls = CapacityClass(0.5, 2.0)
        assert cls.fraction == 0.5

    def test_rejects_zero_fraction(self):
        with pytest.raises(ConfigurationError):
            CapacityClass(0.0, 2.0)

    def test_rejects_negative_capacity(self):
        with pytest.raises(ConfigurationError):
            CapacityClass(0.5, -1.0)


class TestAttackConfig:
    def test_defaults_benign(self):
        attack = AttackConfig()
        assert not attack.collusion
        assert attack.whitewash_interval is None
        assert not attack.false_praise
        assert not attack.large_view

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            AttackConfig(whitewash_interval=0)

    def test_rejects_negative_praise(self):
        with pytest.raises(ConfigurationError):
            AttackConfig(fake_praise_amount=-1.0)

    def test_with_large_view(self):
        attack = AttackConfig(collusion=True).with_large_view()
        assert attack.large_view and attack.collusion


class TestTargetedAttacks:
    def test_tchain_gets_collusion(self):
        attack = targeted_attack_for(Algorithm.TCHAIN)
        assert attack.collusion
        assert attack.whitewash_interval is None

    def test_fairtorrent_gets_whitewashing(self):
        attack = targeted_attack_for(Algorithm.FAIRTORRENT)
        assert attack.whitewash_interval is not None
        assert not attack.collusion

    def test_reputation_gets_simple_freeriding(self):
        """Fig. 5's setup: simple free-riding for the reputation system
        (false praise is a separate ablation)."""
        attack = targeted_attack_for(Algorithm.REPUTATION)
        assert not attack.false_praise
        assert not attack.collusion

    @pytest.mark.parametrize("algorithm", [Algorithm.ALTRUISM,
                                           Algorithm.BITTORRENT,
                                           Algorithm.RECIPROCITY])
    def test_others_simple(self, algorithm):
        attack = targeted_attack_for(algorithm)
        assert not attack.collusion
        assert attack.whitewash_interval is None

    def test_large_view_flag_passes_through(self):
        assert targeted_attack_for(Algorithm.TCHAIN, large_view=True).large_view


class TestStrategyParameters:
    def test_defaults_match_paper(self):
        params = StrategyParameters()
        assert params.alpha_bt == pytest.approx(0.2)
        assert params.n_bt == 4

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            StrategyParameters(alpha_bt=1.5)
        with pytest.raises(ConfigurationError):
            StrategyParameters(n_bt=0)
        with pytest.raises(ConfigurationError):
            StrategyParameters(tchain_max_pending=0)


class TestSimulationConfig:
    def test_freerider_counts(self):
        config = SimulationConfig(Algorithm.TCHAIN, n_users=100,
                                  freerider_fraction=0.2)
        assert config.n_freeriders == 20
        assert config.n_compliant == 80

    def test_parses_string_algorithm(self):
        config = SimulationConfig("T-Chain")
        assert config.algorithm is Algorithm.TCHAIN

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(Algorithm.TCHAIN, capacity_classes=(
                CapacityClass(0.5, 1.0),))

    def test_rejects_full_freerider_population(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(Algorithm.TCHAIN, freerider_fraction=1.0)

    def test_rejects_tiny_swarm(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(Algorithm.TCHAIN, n_users=1)

    def test_with_algorithm_preserves_rest(self):
        config = SimulationConfig(Algorithm.TCHAIN, n_users=50, seed=3)
        other = config.with_algorithm(Algorithm.ALTRUISM)
        assert other.algorithm is Algorithm.ALTRUISM
        assert other.n_users == 50
        assert other.seed == 3

    def test_with_attack(self):
        config = SimulationConfig(Algorithm.TCHAIN)
        attacked = config.with_attack(AttackConfig(collusion=True),
                                      freerider_fraction=0.25)
        assert attacked.attack.collusion
        assert attacked.freerider_fraction == 0.25

    def test_with_seed(self):
        assert SimulationConfig(Algorithm.TCHAIN).with_seed(9).seed == 9


class TestCrossFieldValidation:
    def test_zero_capacity_seeder_rejected(self):
        with pytest.raises(ConfigurationError) as excinfo:
            SimulationConfig(Algorithm.TCHAIN, seeder_capacity=0.0)
        message = str(excinfo.value)
        assert "seeder_capacity" in message
        assert "allow_unseeded" in message  # names the opt-out

    def test_zero_capacity_seeder_allowed_with_opt_out(self):
        config = SimulationConfig(Algorithm.TCHAIN, seeder_capacity=0.0,
                                  allow_unseeded=True)
        assert config.seeder_capacity == 0.0

    def test_sample_interval_beyond_run_rejected(self):
        with pytest.raises(ConfigurationError, match="sample_interval"):
            SimulationConfig(Algorithm.TCHAIN, max_rounds=50,
                             sample_interval=60)

    def test_flash_crowd_longer_than_run_rejected(self):
        with pytest.raises(ConfigurationError, match="flash_crowd_duration"):
            SimulationConfig(Algorithm.TCHAIN, max_rounds=5,
                             flash_crowd_duration=10.0)

    def test_flash_duration_irrelevant_for_poisson(self):
        config = SimulationConfig(Algorithm.TCHAIN, max_rounds=5,
                                  flash_crowd_duration=10.0,
                                  arrival_process="poisson")
        assert config.max_rounds == 5


class TestConfigRoundTrip:
    def test_to_dict_from_dict_is_identity(self):
        config = SimulationConfig(
            Algorithm.TCHAIN, n_users=50, n_pieces=16, seed=11,
            freerider_fraction=0.2,
            attack=targeted_attack_for(Algorithm.TCHAIN),
        ).with_guards("cheap", watchdog_window=30)
        rebuilt = SimulationConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_to_dict_is_json_safe(self):
        import json

        config = SimulationConfig(Algorithm.REPUTATION, n_users=40)
        payload = json.dumps(config.to_dict())
        rebuilt = SimulationConfig.from_dict(json.loads(payload))
        assert rebuilt == config

    def test_with_guards_returns_new_config(self):
        config = SimulationConfig(Algorithm.TCHAIN)
        guarded = config.with_guards("full")
        assert config.guards.mode == "off"
        assert guarded.guards.mode == "full"
        assert guarded.algorithm is config.algorithm
