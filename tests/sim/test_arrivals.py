"""Tests for arrival processes."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.arrivals import flash_crowd_arrivals, poisson_arrivals


class TestFlashCrowd:
    def test_count_and_bounds(self):
        times = flash_crowd_arrivals(100, 10.0, random.Random(0))
        assert len(times) == 100
        assert all(0.0 <= t < 10.0 for t in times)

    def test_sorted(self):
        times = flash_crowd_arrivals(50, 10.0, random.Random(1))
        assert times == sorted(times)

    def test_zero_duration_all_at_once(self):
        assert flash_crowd_arrivals(5, 0.0, random.Random(0)) == [0.0] * 5

    def test_empty_crowd(self):
        assert flash_crowd_arrivals(0, 10.0, random.Random(0)) == []

    def test_deterministic_per_seed(self):
        a = flash_crowd_arrivals(20, 10.0, random.Random(7))
        b = flash_crowd_arrivals(20, 10.0, random.Random(7))
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            flash_crowd_arrivals(-1, 10.0, random.Random(0))
        with pytest.raises(ConfigurationError):
            flash_crowd_arrivals(1, -1.0, random.Random(0))

    @given(st.integers(0, 200), st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=30)
    def test_property_bounds(self, n, duration):
        times = flash_crowd_arrivals(n, duration, random.Random(3))
        assert len(times) == n
        assert all(0.0 <= t < duration for t in times)


class TestPoisson:
    def test_count(self):
        assert len(poisson_arrivals(30, 2.0, random.Random(0))) == 30

    def test_strictly_increasing(self):
        times = poisson_arrivals(30, 2.0, random.Random(0))
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_mean_interarrival(self):
        times = poisson_arrivals(4000, 2.0, random.Random(1))
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(0.5, rel=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            poisson_arrivals(10, 0.0, random.Random(0))
        with pytest.raises(ConfigurationError):
            poisson_arrivals(-1, 1.0, random.Random(0))
