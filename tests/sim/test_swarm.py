"""Tests for swarm membership, views, reputations, and whitewashing."""

from __future__ import annotations

import random

import pytest

from repro.errors import SimulationError
from repro.sim.peer import Peer
from repro.sim.swarm import ReputationBoard, Swarm


def make_swarm(neighbor_count=5, n_pieces=8, seed=0) -> Swarm:
    return Swarm(n_pieces, neighbor_count, random.Random(seed))


def add_peer(swarm, capacity=1.0, **kwargs) -> Peer:
    peer = Peer(swarm.allocate_id(), capacity, swarm.n_pieces, **kwargs)
    swarm.add_peer(peer)
    return peer


class TestMembership:
    def test_add_and_lookup(self):
        swarm = make_swarm()
        peer = add_peer(swarm)
        assert swarm.peer(peer.peer_id) is peer
        assert peer.peer_id in swarm.active_ids

    def test_duplicate_rejected(self):
        swarm = make_swarm()
        peer = add_peer(swarm)
        with pytest.raises(SimulationError):
            swarm.add_peer(peer)

    def test_remove_peer(self):
        swarm = make_swarm()
        peer = add_peer(swarm)
        peer.add_usable_piece(3)
        swarm.availability.add_piece(3)
        swarm.remove_peer(peer.peer_id)
        assert peer.peer_id not in swarm.peers
        assert peer.peer_id in swarm.departed
        assert swarm.availability.count(3) == 0
        with pytest.raises(SimulationError):
            swarm.peer(peer.peer_id)

    def test_remove_unknown_rejected(self):
        with pytest.raises(SimulationError):
            make_swarm().remove_peer(42)

    def test_seeder_tracked(self):
        swarm = make_swarm()
        seeder = add_peer(swarm, is_seeder=True)
        assert seeder.peer_id in swarm.seeder_ids
        assert swarm.active_non_seeders() == []

    def test_availability_counts_arriving_pieces(self):
        swarm = make_swarm()
        add_peer(swarm, is_seeder=True)  # full piece set
        assert all(swarm.availability.count(i) == 1
                   for i in range(swarm.n_pieces))


class TestViews:
    def test_views_are_symmetric(self):
        swarm = make_swarm(neighbor_count=3)
        peers = [add_peer(swarm) for _ in range(10)]
        for peer in peers:
            for neighbor in swarm.neighbors(peer.peer_id):
                assert peer.peer_id in swarm.neighbors(neighbor)

    def test_bounded_sampling(self):
        swarm = make_swarm(neighbor_count=2)
        first = add_peer(swarm)
        # The first peer had nobody to sample; later peers picked <= 2,
        # but symmetric connections may push anyone's degree higher.
        for _ in range(8):
            add_peer(swarm)
        assert len(swarm.neighbors(first.peer_id)) >= 1

    def test_large_view_connects_to_everyone(self):
        swarm = make_swarm(neighbor_count=2)
        others = [add_peer(swarm) for _ in range(10)]
        attacker = Peer(swarm.allocate_id(), 1.0, swarm.n_pieces,
                        is_freerider=True)
        attacker.large_view = True
        swarm.add_peer(attacker)
        assert len(swarm.neighbors(attacker.peer_id)) == len(others)

    def test_large_view_peer_reaches_newcomers(self):
        swarm = make_swarm(neighbor_count=2)
        attacker = Peer(swarm.allocate_id(), 1.0, swarm.n_pieces)
        attacker.large_view = True
        swarm.add_peer(attacker)
        for _ in range(6):
            newcomer = add_peer(swarm)
            assert attacker.peer_id in swarm.neighbors(newcomer.peer_id)

    def test_departed_not_listed(self):
        swarm = make_swarm()
        a = add_peer(swarm)
        b = add_peer(swarm)
        swarm.remove_peer(b.peer_id)
        assert b.peer_id not in swarm.neighbors(a.peer_id)


class TestNeedyNeighbors:
    def test_filters_by_providable_pieces(self):
        swarm = make_swarm(neighbor_count=10)
        uploader = add_peer(swarm)
        needy = add_peer(swarm)
        satisfied = add_peer(swarm)
        uploader.add_usable_piece(0)
        satisfied.add_usable_piece(0)
        result = swarm.needy_neighbors(uploader)
        assert needy.peer_id in result
        assert satisfied.peer_id not in result

    def test_excludes_seeder_and_complete(self):
        swarm = make_swarm(neighbor_count=10)
        uploader = add_peer(swarm)
        uploader.add_usable_piece(0)
        add_peer(swarm, is_seeder=True)
        done = add_peer(swarm)
        for piece in range(swarm.n_pieces):
            done.add_usable_piece(piece)
        assert swarm.needy_neighbors(uploader) == []

    def test_piece_candidates_sorted(self):
        swarm = make_swarm(neighbor_count=10)
        uploader = add_peer(swarm)
        target = add_peer(swarm)
        for piece in (5, 1, 3):
            uploader.add_usable_piece(piece)
        assert swarm.piece_candidates(uploader, target) == [1, 3, 5]


class TestReputationBoard:
    def test_reports_accumulate(self):
        board = ReputationBoard()
        board.report(1, 2.0)
        board.report(1, 3.0)
        assert board.score(1) == 5.0
        assert board.score(2) == 0.0

    def test_fake_reports_tracked(self):
        board = ReputationBoard()
        board.report(1, 2.0, genuine=False)
        assert board.score(1) == 2.0
        assert board.fake_reported == 2.0

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            ReputationBoard().report(1, -1.0)

    def test_forget(self):
        board = ReputationBoard()
        board.report(1, 2.0)
        board.forget(1)
        assert board.score(1) == 0.0


class TestWhitewashing:
    def test_reset_identity_changes_id_keeps_pieces(self):
        swarm = make_swarm(neighbor_count=3)
        for _ in range(6):
            add_peer(swarm)
        peer = add_peer(swarm, is_freerider=True)
        peer.add_usable_piece(2)
        swarm.availability.add_piece(2)
        old_id = peer.peer_id
        new_id = swarm.reset_identity(peer)
        assert new_id != old_id
        assert peer.lineage_id != new_id  # lineage is stable
        assert old_id not in swarm.peers
        assert swarm.peer(new_id) is peer
        assert 2 in peer.pieces
        assert swarm.availability.count(2) == 1  # unchanged

    def test_reset_clears_reputation(self):
        swarm = make_swarm()
        for _ in range(4):
            add_peer(swarm)
        peer = add_peer(swarm)
        swarm.reputation.report(peer.peer_id, 5.0)
        new_id = swarm.reset_identity(peer)
        assert swarm.reputation.score(new_id) == 0.0

    def test_reset_rebuilds_view(self):
        swarm = make_swarm(neighbor_count=3)
        for _ in range(6):
            add_peer(swarm)
        peer = add_peer(swarm)
        old_id = peer.peer_id
        new_id = swarm.reset_identity(peer)
        assert swarm.neighbors(new_id)
        for other in swarm.active_ids:
            assert old_id not in swarm.neighbors(other)

    def test_reset_inactive_rejected(self):
        swarm = make_swarm()
        peer = add_peer(swarm)
        swarm.remove_peer(peer.peer_id)
        with pytest.raises(SimulationError):
            swarm.reset_identity(peer)

    def test_other_peers_deficits_reset_via_fresh_id(self):
        """The attack's point: ledgers keyed by the dead id no longer
        apply to the new identity."""
        swarm = make_swarm(neighbor_count=5)
        victim = add_peer(swarm)
        freerider = add_peer(swarm, is_freerider=True)
        victim.record_upload(freerider.peer_id, pieces=4)
        assert victim.deficit(freerider.peer_id) == 4
        new_id = swarm.reset_identity(freerider)
        assert victim.deficit(new_id) == 0
