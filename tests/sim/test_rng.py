"""Tests for deterministic named random streams."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams, weighted_choice


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        a = RandomStreams(7).stream("pieces")
        b = RandomStreams(7).stream("pieces")
        assert [a.random() for _ in range(10)] == [
            b.random() for _ in range(10)]

    def test_different_names_independent(self):
        streams = RandomStreams(7)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random()
        b = RandomStreams(2).stream("x").random()
        assert a != b

    def test_stream_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_draws_in_one_stream_do_not_shift_another(self):
        """The property that motivates named streams: changing how many
        draws subsystem A makes must not change subsystem B's values."""
        s1 = RandomStreams(3)
        _ = [s1.stream("a").random() for _ in range(100)]
        b_after_many = s1.stream("b").random()

        s2 = RandomStreams(3)
        b_untouched = s2.stream("b").random()
        assert b_after_many == b_untouched

    def test_spawn_derives_new_family(self):
        parent = RandomStreams(5)
        child1 = parent.spawn("peer:1")
        child2 = parent.spawn("peer:2")
        assert child1.stream("x").random() != child2.stream("x").random()
        # Deterministic: same spawn path reproduces.
        again = RandomStreams(5).spawn("peer:1")
        assert again.stream("x").random() == (
            RandomStreams(5).spawn("peer:1").stream("x").random())

    def test_rejects_non_integer_seed(self):
        with pytest.raises(ConfigurationError):
            RandomStreams("seed")  # type: ignore[arg-type]


class TestWeightedChoice:
    def test_deterministic_single_item(self):
        rng = RandomStreams(0).stream("t")
        assert weighted_choice(rng, ["only"], [3.0]) == "only"

    def test_zero_weight_never_chosen(self):
        rng = RandomStreams(0).stream("t")
        picks = {weighted_choice(rng, ["a", "b"], [0.0, 1.0])
                 for _ in range(200)}
        assert picks == {"b"}

    def test_roughly_proportional(self):
        rng = RandomStreams(1).stream("t")
        counts = {"a": 0, "b": 0}
        for _ in range(6000):
            counts[weighted_choice(rng, ["a", "b"], [1.0, 3.0])] += 1
        ratio = counts["b"] / counts["a"]
        assert 2.4 < ratio < 3.7

    def test_rejects_mismatched_lengths(self):
        rng = RandomStreams(0).stream("t")
        with pytest.raises(ConfigurationError):
            weighted_choice(rng, ["a"], [1.0, 2.0])

    def test_rejects_empty(self):
        rng = RandomStreams(0).stream("t")
        with pytest.raises(ConfigurationError):
            weighted_choice(rng, [], [])

    def test_rejects_negative_weight(self):
        rng = RandomStreams(0).stream("t")
        with pytest.raises(ConfigurationError):
            weighted_choice(rng, ["a", "b"], [1.0, -1.0])

    def test_rejects_all_zero(self):
        rng = RandomStreams(0).stream("t")
        with pytest.raises(ConfigurationError):
            weighted_choice(rng, ["a", "b"], [0.0, 0.0])

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1,
                    max_size=10).filter(lambda w: sum(w) > 0))
    @settings(max_examples=50)
    def test_always_returns_positive_weight_item(self, weights):
        rng = RandomStreams(9).stream("t")
        items = list(range(len(weights)))
        pick = weighted_choice(rng, items, weights)
        assert weights[pick] > 0.0
