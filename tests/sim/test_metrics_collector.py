"""Tests for metric collection and derived series."""

from __future__ import annotations

import math

import pytest

from repro.sim.metrics import MetricsCollector, PeerSummary


def summary(pid=0, freerider=False, arrival=0.0, boot=None, done=None,
            up=0, down=0, capacity=1.0) -> PeerSummary:
    return PeerSummary(
        peer_id=pid, lineage_id=pid, capacity=capacity,
        is_freerider=freerider, arrival_time=arrival, bootstrap_time=boot,
        completion_time=done, uploaded=up, downloaded=down)


class TestPeerSummary:
    def test_download_duration(self):
        s = summary(arrival=5.0, done=25.0)
        assert s.download_duration == 20.0
        assert summary().download_duration is None

    def test_fairness_ratio(self):
        assert summary(up=4, down=2).fairness_ratio == 2.0
        assert summary(up=0, down=0).fairness_ratio == 1.0
        assert summary(up=3, down=0).fairness_ratio is None


class TestTransferAccounting:
    def test_seeder_uploads_excluded_from_susceptibility(self):
        collector = MetricsCollector()
        collector.record_transfer(to_freerider=True, usable=True,
                                  from_seeder=True)
        collector.record_transfer(to_freerider=False, usable=True)
        metrics = collector.finalize([], rounds_run=1)
        assert metrics.total_uploaded == 2
        assert metrics.peer_uploaded == 1
        assert metrics.susceptibility() == 0.0

    def test_freerider_usable_receipt_counted(self):
        collector = MetricsCollector()
        collector.record_transfer(to_freerider=True, usable=True)
        collector.record_transfer(to_freerider=False, usable=True)
        metrics = collector.finalize([], rounds_run=1)
        assert metrics.susceptibility() == pytest.approx(0.5)

    def test_encrypted_receipt_not_counted_until_unlock(self):
        collector = MetricsCollector()
        collector.record_transfer(to_freerider=True, usable=False)
        assert collector.finalize([], 1).susceptibility() == 0.0

    def test_unlock_counts_for_freerider(self):
        collector = MetricsCollector()
        collector.record_transfer(to_freerider=True, usable=False)
        collector.record_unlock(for_freerider=True)
        assert collector.finalize([], 1).susceptibility() == pytest.approx(1.0)

    def test_compliant_unlock_ignored(self):
        collector = MetricsCollector()
        collector.record_transfer(to_freerider=False, usable=False)
        collector.record_unlock(for_freerider=False)
        assert collector.finalize([], 1).susceptibility() == 0.0

    def test_no_uploads_zero_susceptibility(self):
        assert MetricsCollector().finalize([], 0).susceptibility() == 0.0


class TestDerivedMetrics:
    def test_completion_statistics(self):
        peers = [
            summary(0, arrival=0.0, done=10.0, down=8),
            summary(1, arrival=0.0, done=30.0, down=8),
            summary(2),  # never finished
            summary(3, freerider=True, arrival=0.0, done=5.0),
        ]
        collector = MetricsCollector()
        m = collector.finalize(peers, rounds_run=30)
        assert m.completion_times() == [10.0, 30.0]
        assert m.completion_times(include_freeriders=True) == [5.0, 10.0, 30.0]
        assert m.mean_completion_time() == 20.0
        assert m.median_completion_time() == 20.0
        assert m.completion_fraction() == pytest.approx(2 / 3)

    def test_empty_run_infinite_times(self):
        m = MetricsCollector().finalize([summary(0)], rounds_run=5)
        assert m.mean_completion_time() == math.inf
        assert m.median_completion_time() == math.inf

    def test_completion_cdf_monotone(self):
        peers = [summary(i, arrival=0.0, done=float(10 + i)) for i in range(5)]
        m = MetricsCollector().finalize(peers, rounds_run=20)
        cdf = m.completion_cdf()
        fractions = [p["fraction"] for p in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_final_fairness_excludes_freeriders(self):
        peers = [
            summary(0, up=10, down=10),
            summary(1, freerider=True, up=0, down=50),
        ]
        m = MetricsCollector().finalize(peers, rounds_run=10)
        assert m.final_fairness() == pytest.approx(1.0)

    def test_final_fairness_du(self):
        peers = [summary(0, up=2, down=4), summary(1, up=4, down=2)]
        m = MetricsCollector().finalize(peers, rounds_run=10)
        assert m.final_fairness_du() == pytest.approx((2.0 + 0.5) / 2)

    def test_bootstrap_statistics(self):
        peers = [
            summary(0, arrival=1.0, boot=2.0),
            summary(1, arrival=1.0, boot=5.0),
            summary(2),
        ]
        m = MetricsCollector().finalize(peers, rounds_run=10)
        assert m.mean_bootstrap_time() == pytest.approx(2.5)
        assert m.bootstrapped_fraction_final() == pytest.approx(2 / 3)


class TestSampling:
    def sample_collector(self) -> MetricsCollector:
        collector = MetricsCollector()
        collector.record_transfer(to_freerider=False, usable=True)
        collector.sample(time=1.0, active_peers=10, arrived=10,
                         population=20, bootstrapped=5, completed=0,
                         fairness_ud=0.8, fairness_du=1.3)
        collector.sample(time=2.0, active_peers=10, arrived=20,
                         population=20, bootstrapped=18, completed=2,
                         fairness_ud=0.9, fairness_du=1.1)
        return collector

    def test_series_extraction(self):
        m = self.sample_collector().finalize([], rounds_run=2)
        assert [r["fairness"] for r in m.fairness_series("ud")] == [0.8, 0.9]
        assert [r["fairness"] for r in m.fairness_series("du")] == [1.3, 1.1]
        assert [r["fraction"] for r in m.bootstrap_series()] == [0.25, 0.9]

    def test_bad_kind_rejected(self):
        m = self.sample_collector().finalize([], rounds_run=2)
        with pytest.raises(ValueError):
            m.fairness_series("xy")

    def test_time_to_bootstrap_fraction(self):
        m = self.sample_collector().finalize([], rounds_run=2)
        assert m.time_to_bootstrap_fraction(0.2) == 1.0
        assert m.time_to_bootstrap_fraction(0.5) == 2.0
        assert m.time_to_bootstrap_fraction(0.95) == math.inf

    def test_mean_fairness_window(self):
        m = self.sample_collector().finalize([], rounds_run=2)
        assert m.mean_fairness_between(0.0, 10.0, "ud") == pytest.approx(0.85)
        assert m.mean_fairness_between(1.5, 10.0, "ud") == pytest.approx(0.9)
        assert m.mean_fairness_between(5.0, 10.0, "ud") is None


class TestFairnessF:
    def test_perfectly_fair_run_is_zero(self):
        peers = [summary(0, up=8, down=8), summary(1, up=3, down=3)]
        m = MetricsCollector().finalize(peers, rounds_run=10)
        assert m.final_fairness_F() == pytest.approx(0.0)

    def test_matches_analytical_definition(self):
        import math
        peers = [summary(0, up=2, down=4), summary(1, up=4, down=2)]
        m = MetricsCollector().finalize(peers, rounds_run=10)
        assert m.final_fairness_F() == pytest.approx(math.log(2.0))

    def test_excludes_freeriders_and_idle(self):
        peers = [summary(0, up=5, down=5),
                 summary(1, freerider=True, up=0, down=50),
                 summary(2, up=0, down=0)]
        m = MetricsCollector().finalize(peers, rounds_run=10)
        assert m.final_fairness_F() == pytest.approx(0.0)

    def test_none_when_no_eligible_users(self):
        m = MetricsCollector().finalize([summary(0)], rounds_run=1)
        assert m.final_fairness_F() is None
