"""Tests for the fault-injection subsystem."""

from __future__ import annotations

import math
import random
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenarios import smoke_scale, with_freeriders
from repro.names import Algorithm
from repro.sim import FaultConfig, FaultModel, run_simulation
from repro.sim.metrics import FaultCounters, degradation_rows


def _run(algorithm=Algorithm.BITTORRENT, seed=7, faults=None, **overrides):
    config = smoke_scale(algorithm, seed=seed)
    if overrides:
        config = replace(config, **overrides)
    if faults is not None:
        config = config.with_faults(faults)
    return run_simulation(config)


class TestFaultConfig:
    def test_defaults_disabled(self):
        config = FaultConfig()
        assert not config.enabled

    @pytest.mark.parametrize("field", ["transfer_loss_rate", "crash_hazard",
                                       "seeder_outage_rate"])
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_rates_must_lie_in_unit_interval(self, field, value):
        with pytest.raises(ConfigurationError):
            FaultConfig(**{field: value})

    @pytest.mark.parametrize("field", ["transfer_loss_rate",
                                       "seeder_outage_rate"])
    def test_loss_and_outage_rates_legal_at_one(self, field):
        """Stress runs legitimately pin these to exactly 1.0: every
        transfer lost, a seeder that fails every round."""
        assert getattr(FaultConfig(**{field: 1.0}), field) == 1.0

    def test_crash_hazard_rejects_one(self):
        """hazard=1.0 would wipe every downloader on round one — only
        ever a configuration mistake, so it stays excluded."""
        with pytest.raises(ConfigurationError):
            FaultConfig(crash_hazard=1.0)

    def test_outage_duration_positive(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(seeder_outage_duration=0)

    def test_report_delay_nonnegative(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(report_delay_rounds=-1)

    def test_obligation_expiry_positive_or_none(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(obligation_expiry_rounds=0)
        assert FaultConfig(obligation_expiry_rounds=1).enabled
        assert not FaultConfig(obligation_expiry_rounds=None).enabled

    @pytest.mark.parametrize("kwargs", [
        {"transfer_loss_rate": 0.1},
        {"crash_hazard": 0.01},
        {"seeder_outage_rate": 0.05},
        {"report_delay_rounds": 3},
        {"obligation_expiry_rounds": 10},
    ])
    def test_any_active_process_enables(self, kwargs):
        assert FaultConfig(**kwargs).enabled

    def test_with_loss_rate(self):
        config = FaultConfig(crash_hazard=0.01).with_loss_rate(0.2)
        assert config.transfer_loss_rate == 0.2
        assert config.crash_hazard == 0.01


class TestFaultModel:
    def test_zero_rates_draw_no_randomness(self):
        rng = random.Random(1)
        before = rng.getstate()
        model = FaultModel(FaultConfig(), rng)
        assert not model.transfer_lost()
        assert not model.peer_crashes()
        assert not model.seeder_fails()
        assert rng.getstate() == before

    def test_nonzero_rate_draws(self):
        rng = random.Random(1)
        before = rng.getstate()
        model = FaultModel(FaultConfig(transfer_loss_rate=0.5), rng)
        model.transfer_lost()
        assert rng.getstate() != before

    def test_loss_frequency_matches_rate(self):
        model = FaultModel(FaultConfig(transfer_loss_rate=0.3),
                           random.Random(42))
        losses = sum(model.transfer_lost() for _ in range(10_000))
        assert 0.27 < losses / 10_000 < 0.33


class TestZeroFaultDeterminism:
    """Enabling the fault layer at zero rates must not move a single bit."""

    @pytest.mark.parametrize("algorithm", [Algorithm.BITTORRENT,
                                           Algorithm.TCHAIN,
                                           Algorithm.REPUTATION])
    def test_metrics_identical_to_faultless(self, algorithm):
        baseline = _run(algorithm).metrics
        explicit = _run(algorithm, faults=FaultConfig()).metrics
        assert explicit == baseline

    def test_zero_counters_on_faultless_run(self):
        metrics = _run().metrics
        assert metrics.faults.transfers_lost == 0
        assert metrics.faults.peer_crashes == 0
        assert metrics.faults.seeder_outages == 0
        assert metrics.observed_loss_rate() == 0.0


class TestTransferLoss:
    def test_faulty_run_deterministic_per_seed(self):
        faults = FaultConfig(transfer_loss_rate=0.2, crash_hazard=0.005)
        assert _run(faults=faults).metrics == _run(faults=faults).metrics

    def test_observed_loss_tracks_configured(self):
        metrics = _run(faults=FaultConfig(transfer_loss_rate=0.2)).metrics
        assert metrics.faults.transfers_lost > 0
        assert 0.14 < metrics.observed_loss_rate() < 0.27

    def test_losses_slow_the_swarm(self):
        clean = _run().metrics.mean_completion_time()
        lossy = _run(faults=FaultConfig(transfer_loss_rate=0.3)).metrics
        assert lossy.mean_completion_time() > clean
        assert lossy.completion_fraction() == 1.0  # degraded, not broken

    def test_conservation_holds_under_loss(self):
        metrics = _run(faults=FaultConfig(transfer_loss_rate=0.2)).metrics
        assert metrics.total_uploaded == metrics.total_received_raw

    def test_lost_then_recovered_counted_as_retry(self):
        metrics = _run(faults=FaultConfig(transfer_loss_rate=0.2)).metrics
        # Everyone finished, so every lost piece was eventually re-sent.
        assert metrics.faults.transfers_retried > 0
        assert (metrics.faults.transfers_retried
                <= metrics.faults.transfers_lost)

    def test_lost_transfers_traced(self):
        result = _run(faults=FaultConfig(transfer_loss_rate=0.2),
                      record_transfers=True)
        lost = [t for t in result.metrics.transfers if t.lost]
        delivered = [t for t in result.metrics.transfers if not t.lost]
        assert lost and delivered
        assert len(lost) == result.metrics.faults.transfers_lost


class TestCrashes:
    def test_crashed_peers_leave_permanently(self):
        faults = FaultConfig(crash_hazard=0.01)
        metrics = _run(faults=faults, seed=11).metrics
        assert metrics.faults.peer_crashes > 0
        # A crashed peer never completes.
        assert metrics.completion_fraction() < 1.0

    def test_tchain_survives_crashes(self):
        faults = FaultConfig(crash_hazard=0.01)
        metrics = _run(Algorithm.TCHAIN, faults=faults, seed=11).metrics
        assert metrics.faults.peer_crashes > 0
        assert metrics.total_uploaded == metrics.total_received_raw


class TestSeederOutages:
    def test_outages_recorded_with_downtime(self):
        faults = FaultConfig(seeder_outage_rate=0.1,
                             seeder_outage_duration=3)
        metrics = _run(faults=faults, seed=5).metrics
        assert metrics.faults.seeder_outages > 0
        assert (metrics.faults.seeder_downtime_rounds
                >= metrics.faults.seeder_outages * 2)

    def test_swarm_completes_despite_outages(self):
        faults = FaultConfig(seeder_outage_rate=0.1)
        metrics = _run(faults=faults, seed=5).metrics
        assert metrics.completion_fraction() == 1.0


class TestDelayedReports:
    def test_delayed_reports_counted(self):
        faults = FaultConfig(report_delay_rounds=3)
        metrics = _run(Algorithm.REPUTATION, faults=faults).metrics
        assert metrics.faults.delayed_reports > 0

    def test_reputation_still_functions_with_stale_board(self):
        faults = FaultConfig(report_delay_rounds=5)
        metrics = _run(Algorithm.REPUTATION, faults=faults).metrics
        assert metrics.completion_fraction() == 1.0


class TestObligationExpiry:
    def test_lost_keys_expire_instead_of_leaking(self):
        faults = FaultConfig(transfer_loss_rate=0.25,
                             obligation_expiry_rounds=8)
        metrics = _run(Algorithm.TCHAIN, faults=faults, seed=9).metrics
        assert metrics.faults.obligations_expired > 0

    def test_expiry_alone_is_harmless(self):
        # With a reliable network every key arrives promptly, so the
        # timeout never fires and the run matches the baseline.
        baseline = _run(Algorithm.TCHAIN).metrics
        expiring = _run(Algorithm.TCHAIN,
                        faults=FaultConfig(obligation_expiry_rounds=50))
        assert expiring.metrics.faults.obligations_expired == 0
        assert (expiring.metrics.mean_completion_time()
                == baseline.mean_completion_time())


class TestDegradationRows:
    def test_rows_relative_to_zero_baseline(self):
        runs = {
            rate: _run(faults=FaultConfig(transfer_loss_rate=rate)).metrics
            for rate in (0.0, 0.2)
        }
        rows = degradation_rows(runs)
        assert [r["loss_rate"] for r in rows] == [0.0, 0.2]
        assert rows[0]["slowdown"] == 1.0
        assert rows[1]["slowdown"] > 1.0
        assert rows[1]["transfers_lost"] > 0


class _StubMetrics:
    """Just enough surface for ``degradation_rows``: the headline
    accessors plus an all-zero fault block."""

    def __init__(self, mean_time):
        self._mean_time = mean_time
        self.faults = FaultCounters()

    def mean_completion_time(self):
        return self._mean_time

    def observed_loss_rate(self):
        return 0.0

    def completion_fraction(self):
        return 1.0

    def final_fairness(self):
        return None


class TestDegradationRowsEdgeCases:
    """Regressions for the exact-0.0 baseline lookup, the truthiness
    baseline test, and the zero-time baseline division."""

    def test_float_residue_rate_still_found_as_baseline(self):
        # A sweep that computed its rates arithmetically can carry a
        # tiny residue instead of an exact 0.0; the old `runs.get(0.0)`
        # missed it and every slowdown came out NaN.
        runs = {5e-17: _StubMetrics(10.0), 0.2: _StubMetrics(25.0)}
        rows = degradation_rows(runs)
        assert rows[0]["slowdown"] == 1.0
        assert rows[1]["slowdown"] == 2.5

    def test_negative_zero_rate_is_baseline(self):
        runs = {-0.0: _StubMetrics(8.0), 0.1: _StubMetrics(16.0)}
        assert [r["slowdown"] for r in degradation_rows(runs)] == [1.0, 2.0]

    def test_zero_baseline_time_yields_one_and_inf(self):
        # base_time == 0.0 is falsy: the old guard treated a legitimate
        # all-instant baseline as "no baseline" and emitted NaN.
        runs = {0.0: _StubMetrics(0.0), 0.3: _StubMetrics(4.0)}
        rows = degradation_rows(runs)
        assert rows[0]["slowdown"] == 1.0
        assert rows[1]["slowdown"] == math.inf

    def test_no_baseline_rate_gives_nan(self):
        runs = {0.1: _StubMetrics(10.0), 0.2: _StubMetrics(20.0)}
        assert all(math.isnan(r["slowdown"])
                   for r in degradation_rows(runs))

    def test_nan_mean_time_gives_nan_row(self):
        runs = {0.0: _StubMetrics(10.0), 0.4: _StubMetrics(math.nan)}
        rows = degradation_rows(runs)
        assert rows[0]["slowdown"] == 1.0
        assert math.isnan(rows[1]["slowdown"])


class TestFaultsUnderAttack:
    def test_crashes_during_freeriding_attack(self):
        config = with_freeriders(smoke_scale(Algorithm.TCHAIN, seed=13),
                                 fraction=0.2)
        config = config.with_faults(FaultConfig(crash_hazard=0.01,
                                                transfer_loss_rate=0.1))
        metrics = run_simulation(config).metrics
        assert metrics.faults.peer_crashes > 0
        assert metrics.total_uploaded == metrics.total_received_raw
