"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--algorithm", "tchain"])
        assert args.algorithm == "tchain"
        assert args.users == 200
        assert args.arrivals == "flash"

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "gnutella"])

    def test_propshare_accepted(self):
        args = build_parser().parse_args(["run", "--algorithm", "propshare"])
        assert args.algorithm == "propshare"

    def test_run_fault_flags(self):
        args = build_parser().parse_args(
            ["run", "--algorithm", "tchain", "--loss-rate", "0.2",
             "--crash-hazard", "0.01", "--report-delay", "3",
             "--obligation-expiry", "10"])
        assert args.loss_rate == 0.2
        assert args.crash_hazard == 0.01
        assert args.report_delay == 3
        assert args.obligation_expiry == 10

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "--algorithm", "tchain"])
        assert args.replicates == 5
        assert args.max_attempts == 3
        assert args.journal is None
        assert args.timeout is None
        assert args.loss_rate == 0.0

    def test_figure_scale_choices(self):
        args = build_parser().parse_args(["figure5", "--scale", "smoke"])
        assert args.scale == "smoke"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure5", "--scale", "huge"])


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table III" in out

    def test_run_prints_summary(self, capsys):
        code = main(["run", "--algorithm", "altruism", "--users", "40",
                     "--pieces", "12", "--seed", "3", "--max-rounds", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "completion_fraction" in out
        assert "susceptibility" in out

    def test_run_json_stdout(self, capsys):
        code = main(["run", "--algorithm", "tchain", "--users", "40",
                     "--pieces", "12", "--seed", "3", "--max-rounds", "200",
                     "--json", "-"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["algorithm"] == "tchain"

    def test_run_json_file(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        code = main(["run", "--algorithm", "bittorrent", "--users", "40",
                     "--pieces", "12", "--seed", "3", "--max-rounds", "200",
                     "--json", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["summary"]["n_users"] == 40

    def test_run_with_freeriders(self, capsys):
        code = main(["run", "--algorithm", "altruism", "--users", "40",
                     "--pieces", "12", "--seed", "3", "--max-rounds", "200",
                     "--freeriders", "0.25", "--large-view"])
        assert code == 0
        assert "susceptibility" in capsys.readouterr().out

    def test_run_with_faults(self, capsys):
        code = main(["run", "--algorithm", "bittorrent", "--users", "40",
                     "--pieces", "12", "--seed", "3", "--max-rounds", "200",
                     "--loss-rate", "0.2"])
        assert code == 0
        assert "completion_fraction" in capsys.readouterr().out

    def test_sweep_smoke(self, capsys):
        code = main(["sweep", "--algorithm", "altruism", "--scale", "smoke",
                     "--replicates", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 replicates" in out
        assert "mean_completion_time" in out
        assert "0 failed" in out

    def test_sweep_with_journal_resumes(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        argv = ["sweep", "--algorithm", "altruism", "--scale", "smoke",
                "--replicates", "2", "--journal", journal]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 resumed" in first
        assert main(argv) == 0
        assert "2 resumed" in capsys.readouterr().out

    def test_sweep_rejects_zero_replicates(self, capsys):
        code = main(["sweep", "--algorithm", "altruism", "--scale", "smoke",
                     "--replicates", "0"])
        assert code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_figure4_smoke(self, capsys):
        code = main(["figure4", "--scale", "smoke", "--seed", "2"])
        assert code == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_report_tables_only(self, capsys):
        code = main(["report", "--no-figures"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "Figure 4" not in out


class TestGuardFlags:
    def test_run_guard_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "--algorithm", "tchain", "--guards", "full",
             "--bundle-dir", "/tmp/b", "--watchdog-window", "30",
             "--watchdog-action", "raise"])
        assert args.guards == "full"
        assert args.bundle_dir == "/tmp/b"
        assert args.watchdog_window == 30
        assert args.watchdog_action == "raise"

    def test_guards_default_off(self):
        args = build_parser().parse_args(["run", "--algorithm", "tchain"])
        assert args.guards == "off"

    def test_rejects_unknown_guard_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--algorithm", "tchain", "--guards", "paranoid"])

    def test_run_with_guards_clean(self, tmp_path, capsys):
        code = main(["run", "--algorithm", "bittorrent", "--users", "40",
                     "--pieces", "12", "--seed", "3", "--max-rounds", "200",
                     "--guards", "full", "--bundle-dir", str(tmp_path)])
        assert code == 0
        assert list(tmp_path.iterdir()) == []

    def test_run_degraded_exits_4_and_prints_bundle(self, tmp_path, capsys):
        # A near-permanent seeder outage starves the flash crowd; the
        # watchdog should degrade the run instead of spinning 80 rounds.
        code = main(["run", "--algorithm", "reciprocity", "--users", "30",
                     "--pieces", "16", "--max-rounds", "80",
                     "--guards", "cheap", "--watchdog-window", "8",
                     "--bundle-dir", str(tmp_path),
                     "--seeder-outage-rate", "0.95",
                     "--seeder-outage-duration", "500"])
        assert code == 4
        err = capsys.readouterr().err
        assert "stall watchdog" in err
        assert str(tmp_path) in err
        assert any(p.name.startswith("bundle-stall-")
                   for p in tmp_path.iterdir())

    def test_run_stall_raise_exits_3(self, tmp_path, capsys):
        code = main(["run", "--algorithm", "reciprocity", "--users", "30",
                     "--pieces", "16", "--max-rounds", "80",
                     "--guards", "cheap", "--watchdog-window", "8",
                     "--watchdog-action", "raise",
                     "--bundle-dir", str(tmp_path),
                     "--seeder-outage-rate", "0.95",
                     "--seeder-outage-duration", "500"])
        assert code == 3
        err = capsys.readouterr().err
        assert "stalled" in err
        assert str(tmp_path) in err

    def test_sweep_degraded_exits_4_with_bundle_lines(self, tmp_path, capsys):
        code = main(["sweep", "--algorithm", "reciprocity", "--scale",
                     "smoke", "--replicates", "2", "--jobs", "1",
                     "--guards", "cheap", "--watchdog-window", "8",
                     "--bundle-dir", str(tmp_path),
                     "--seeder-outage-rate", "0.95",
                     "--seeder-outage-duration", "500"])
        assert code == 4
        captured = capsys.readouterr()
        assert "degraded: stall watchdog fired" in captured.out
        assert "bundle:" in captured.out
        assert "replicate(s) degraded" in captured.err


class TestObservabilityCli:
    def test_obs_flags_parse_on_run_and_sweep(self):
        for command in ("run", "sweep"):
            args = build_parser().parse_args(
                [command, "--algorithm", "tchain", "--trace",
                 "--sample-every", "5", "--profile",
                 "--sample-rate", "transfer=10",
                 "--trace-out", "out.json"])
            assert args.trace and args.profile
            assert args.sample_every == 5
            assert args.sample_rate == ["transfer=10"]
            assert args.trace_out == "out.json"

    def test_obs_defaults_off(self):
        args = build_parser().parse_args(["run", "--algorithm", "tchain"])
        assert not args.trace and not args.profile
        assert args.sample_every == 0
        assert args.trace_out is None

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.algorithm == "tchain"
        assert args.sample_every == 1

    def test_run_rejects_bad_sample_rate(self, capsys):
        assert main(["run", "--algorithm", "tchain", "--users", "10",
                     "--pieces", "4", "--sample-rate", "transfer=0"]) == 2
        assert "--sample-rate" in capsys.readouterr().err

    def test_run_rejects_unknown_category(self, capsys):
        assert main(["run", "--algorithm", "tchain", "--users", "10",
                     "--pieces", "4", "--sample-rate", "nosuch=5"]) == 2

    def test_run_writes_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "run.trace.json"
        assert main(["run", "--algorithm", "tchain", "--users", "20",
                     "--pieces", "8", "--max-rounds", "80",
                     "--sample-every", "2",
                     "--trace-out", str(out)]) == 0
        records = json.loads(out.read_text())
        phases = {record["ph"] for record in records}
        assert {"M", "i", "C"} <= phases

    def test_trace_command_renders_profile_and_trace(self, tmp_path,
                                                     capsys):
        out = tmp_path / "trace.json"
        jsonl = tmp_path / "events.jsonl"
        assert main(["trace", "--users", "20", "--pieces", "8",
                     "--max-rounds", "80", "--trace-out", str(out),
                     "--jsonl-out", str(jsonl)]) == 0
        stdout = capsys.readouterr().out
        assert "Self-profile (wall clock)" in stdout
        assert "engine.round" in stdout
        assert "trace ring:" in stdout
        assert "progress_p50" in stdout  # sparkline dashboard
        records = json.loads(out.read_text())
        assert any(r["ph"] == "i" for r in records)
        lines = jsonl.read_text().splitlines()
        assert lines and all(json.loads(line) for line in lines)

    def test_trace_respects_sample_rate_and_buffer(self, capsys):
        assert main(["trace", "--users", "20", "--pieces", "8",
                     "--max-rounds", "60", "--sample-rate", "transfer=50",
                     "--buffer", "16"]) == 0
        stdout = capsys.readouterr().out
        assert "capacity 16" in stdout
        assert "sampled out" in stdout

    def test_sweep_trace_out_requires_sampling(self, capsys):
        assert main(["sweep", "--algorithm", "tchain", "--scale", "smoke",
                     "--replicates", "1", "--trace-out", "x.json"]) == 2
        assert "--sample-every" in capsys.readouterr().err

    def test_sweep_writes_per_replicate_series_trace(self, tmp_path,
                                                     capsys):
        out = tmp_path / "sweep.trace.json"
        assert main(["sweep", "--algorithm", "tchain", "--scale", "smoke",
                     "--replicates", "2", "--jobs", "1",
                     "--sample-every", "5", "--trace-out", str(out)]) == 0
        records = json.loads(out.read_text())
        meta = [r for r in records if r["ph"] == "M"]
        assert len(meta) == 2  # one Perfetto process per seed
        assert any(r["ph"] == "C" for r in records)


class TestHybridCli:
    """--population/--subswarms plumbing on run and sweep."""

    HYBRID_ARGS = ["--users", "60", "--pieces", "24", "--max-rounds", "250",
                   "--backend", "vector-fast", "--population", "1200",
                   "--subswarms", "4", "--seed", "3"]

    def test_run_hybrid_prints_population_summary(self, capsys):
        code = main(["run", "--algorithm", "tchain"] + self.HYBRID_ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "population 1200 as 4 subswarms x 60 users" in out
        assert "shard weight 5" in out
        assert "hybrid-v1" in out
        assert "population_completed" in out
        assert "fluid_residual" in out

    def test_run_hybrid_json(self, capsys):
        code = main(["run", "--algorithm", "tchain"] + self.HYBRID_ARGS
                    + ["--json", "-"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["digest_lineage"] == "hybrid-v1"

    def test_subswarms_requires_population(self, capsys):
        code = main(["run", "--algorithm", "tchain", "--subswarms", "4"])
        assert code == 2
        assert "--subswarms requires --population" in capsys.readouterr().err

    def test_jobs_requires_population(self, capsys):
        code = main(["run", "--algorithm", "tchain", "--jobs", "2"])
        assert code == 2
        assert "--jobs requires --population" in capsys.readouterr().err

    def test_undersized_population_exits_2(self, capsys):
        code = main(["run", "--algorithm", "tchain", "--users", "100",
                     "--population", "50"])
        assert code == 2
        assert "shard weights" in capsys.readouterr().err

    def test_run_hybrid_downgrade_notice_parity(self, capsys):
        # A hybrid template that the vector engines cannot run falls
        # back with the same pre-run notice a plain run gets.
        code = main(["run", "--algorithm", "tchain"] + self.HYBRID_ARGS
                    + ["--guards", "cheap"])
        assert code == 0
        captured = capsys.readouterr()
        assert "fell back" in captured.err
        assert "hybrid-v1" in captured.out

    def test_sweep_hybrid_smoke(self, capsys):
        code = main(["sweep", "--algorithm", "tchain", "--scale", "smoke",
                     "--replicates", "2", "--backend", "vector-fast",
                     "--population", "480", "--subswarms", "4",
                     "--jobs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean_completion_time" in out
        assert "0 failed" in out

    def test_sweep_subswarms_requires_population(self, capsys):
        code = main(["sweep", "--algorithm", "tchain", "--scale", "smoke",
                     "--subswarms", "4"])
        assert code == 2
        assert "--subswarms requires --population" in capsys.readouterr().err

    def test_sweep_undersized_population_exits_2(self, capsys):
        code = main(["sweep", "--algorithm", "tchain", "--scale", "smoke",
                     "--population", "10"])
        assert code == 2
        assert "shard weights" in capsys.readouterr().err
