"""Tests for free-rider behaviour and the targeted attacks."""

from __future__ import annotations

import pytest

from repro.names import Algorithm
from repro.sim.config import AttackConfig
from tests.algorithms.conftest import (
    build_sim,
    give_piece,
    run_strategy_round,
    users_of,
)


def freeriders(sim):
    return [p for p in users_of(sim) if p.is_freerider]


def compliant(sim):
    return [p for p in users_of(sim) if not p.is_freerider]


class TestSimpleFreeRiding:
    def test_freerider_never_uploads(self):
        sim = build_sim(Algorithm.ALTRUISM, n_users=10, seed=1,
                        freerider_fraction=0.3)
        rider = freeriders(sim)[0]
        for piece in range(6):
            give_piece(sim, rider, piece)
        for _ in range(5):
            run_strategy_round(sim, rider)
        assert rider.total_uploaded == 0

    def test_population_split(self):
        sim = build_sim(Algorithm.ALTRUISM, n_users=10, seed=1,
                        freerider_fraction=0.3)
        assert len(freeriders(sim)) == 3
        assert len(compliant(sim)) == 7


class TestFalsePraise:
    def test_colluders_inflate_each_other(self):
        attack = AttackConfig(false_praise=True, fake_praise_amount=4.0)
        sim = build_sim(Algorithm.REPUTATION, n_users=10, seed=2,
                        freerider_fraction=0.3, attack=attack)
        riders = freeriders(sim)
        for rider in riders:
            run_strategy_round(sim, rider)
        total_fake = sim.swarm.reputation.fake_reported
        assert total_fake == pytest.approx(4.0 * len(riders))
        # All praise landed on coalition members, none on compliant users.
        praised = [p for p in users_of(sim)
                   if sim.swarm.reputation.score(p.peer_id) > 0]
        assert praised
        assert all(p.is_freerider for p in praised)

    def test_no_praise_without_flag(self):
        sim = build_sim(Algorithm.REPUTATION, n_users=10, seed=2,
                        freerider_fraction=0.3)
        for rider in freeriders(sim):
            run_strategy_round(sim, rider)
        assert sim.swarm.reputation.fake_reported == 0.0


class TestCollusion:
    def test_coalition_wired(self):
        attack = AttackConfig(collusion=True)
        sim = build_sim(Algorithm.TCHAIN, n_users=10, seed=3,
                        freerider_fraction=0.3, attack=attack)
        riders = freeriders(sim)
        ids = {p.peer_id for p in riders}
        for rider in riders:
            assert rider.colluders == ids - {rider.peer_id}

    def test_colluding_designation_releases_key(self):
        """S seeds freerider R; the designated third party is R's
        colluder P, who falsely confirms -> R gets the piece free."""
        attack = AttackConfig(collusion=True)
        sim = build_sim(Algorithm.TCHAIN, n_users=4, seed=4,
                        freerider_fraction=0.5, attack=attack)
        rider = freeriders(sim)[0]
        uploader = max(compliant(sim), key=lambda p: p.capacity)
        give_piece(sim, uploader, 0)
        # Make every non-colluder ineligible as designated target so the
        # choice must land on the rider's colluder.
        for peer in users_of(sim):
            if peer is not rider and not peer.is_freerider and peer is not uploader:
                give_piece(sim, peer, 0)
        sim.round_index += 1
        uploader.budget.new_round()
        assert sim.tchain_seed(uploader, rider.peer_id)
        assert rider.usable_piece_count == 1  # unlocked without work
        assert rider.total_uploaded == 0

    def test_without_collusion_piece_stays_locked(self):
        sim = build_sim(Algorithm.TCHAIN, n_users=4, seed=4,
                        freerider_fraction=0.5)
        rider = freeriders(sim)[0]
        uploader = max(compliant(sim), key=lambda p: p.capacity)
        give_piece(sim, uploader, 0)
        for peer in users_of(sim):
            if peer is not rider and not peer.is_freerider and peer is not uploader:
                give_piece(sim, peer, 0)
        sim.round_index += 1
        uploader.budget.new_round()
        assert sim.tchain_seed(uploader, rider.peer_id)
        assert rider.usable_piece_count == 0
        assert rider.pending


class TestWhitewashing:
    def test_identity_reset_on_interval(self):
        attack = AttackConfig(whitewash_interval=3)
        sim = build_sim(Algorithm.FAIRTORRENT, n_users=10, seed=5,
                        freerider_fraction=0.2, attack=attack)
        rider = freeriders(sim)[0]
        original = rider.peer_id
        sim.round_index = 3
        sim._process_whitewashing()
        assert rider.peer_id != original
        assert rider.lineage_id == original or rider.lineage_id != rider.peer_id

    def test_no_reset_off_interval(self):
        attack = AttackConfig(whitewash_interval=3)
        sim = build_sim(Algorithm.FAIRTORRENT, n_users=10, seed=5,
                        freerider_fraction=0.2, attack=attack)
        rider = freeriders(sim)[0]
        original = rider.peer_id
        sim.round_index = 2
        sim._process_whitewashing()
        assert rider.peer_id == original

    def test_compliant_users_never_whitewash(self):
        attack = AttackConfig(whitewash_interval=1)
        sim = build_sim(Algorithm.FAIRTORRENT, n_users=10, seed=5,
                        freerider_fraction=0.2, attack=attack)
        ids = {p.peer_id for p in compliant(sim)}
        sim.round_index = 1
        sim._process_whitewashing()
        assert {p.peer_id for p in compliant(sim)} == ids


class TestLargeView:
    def test_freeriders_connected_to_everyone(self):
        attack = AttackConfig(large_view=True)
        sim = build_sim(Algorithm.ALTRUISM, n_users=12, seed=6,
                        freerider_fraction=0.25, attack=attack)
        for rider in freeriders(sim):
            # Connected to all other users and the seeder.
            assert len(sim.swarm.neighbors(rider.peer_id)) == 12

    def test_without_flag_views_bounded(self):
        sim = build_sim(Algorithm.ALTRUISM, n_users=12, seed=6,
                        freerider_fraction=0.25)
        # neighbor_count is n_users here, so instead check the flag.
        assert all(not p.large_view for p in freeriders(sim))


class TestCrashesDuringAttack:
    """Fault injection composes with the attack machinery: crashing
    colluders must not leave dangling coalition references."""

    def test_colluder_crash_keeps_coalition_consistent(self):
        from repro.experiments.scenarios import smoke_scale, with_freeriders
        from repro.sim import FaultConfig, run_simulation

        config = with_freeriders(
            smoke_scale(Algorithm.TCHAIN, seed=13), fraction=0.25,
            attack=AttackConfig(collusion=True))
        config = config.with_faults(FaultConfig(crash_hazard=0.02))
        metrics = run_simulation(config).metrics
        assert metrics.faults.peer_crashes > 0
        assert metrics.total_uploaded == metrics.total_received_raw

    def test_whitewashing_with_crashes(self):
        from repro.experiments.scenarios import smoke_scale, with_freeriders
        from repro.sim import FaultConfig, run_simulation

        config = with_freeriders(
            smoke_scale(Algorithm.FAIRTORRENT, seed=13), fraction=0.2,
            attack=AttackConfig(whitewash_interval=10))
        config = config.with_faults(FaultConfig(crash_hazard=0.015,
                                                transfer_loss_rate=0.1))
        metrics = run_simulation(config).metrics
        assert metrics.faults.peer_crashes > 0
        assert metrics.faults.transfers_lost > 0
        assert metrics.total_uploaded == metrics.total_received_raw
