"""Tests for summary statistics helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import stats

values = st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1,
                  max_size=50)


class TestMeanMedian:
    def test_mean(self):
        assert stats.mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_nan(self):
        assert math.isnan(stats.mean([]))

    def test_median_odd(self):
        assert stats.median([5.0, 1.0, 3.0]) == 3.0

    def test_median_even(self):
        assert stats.median([1.0, 2.0, 3.0, 10.0]) == 2.5

    def test_median_empty_nan(self):
        assert math.isnan(stats.median([]))

    @given(values)
    def test_median_between_extremes(self, xs):
        assert min(xs) <= stats.median(xs) <= max(xs)


class TestCdf:
    def test_points(self):
        cdf = stats.cdf_points([3.0, 1.0, 2.0])
        assert [p["value"] for p in cdf] == [1.0, 2.0, 3.0]
        assert [p["fraction"] for p in cdf] == pytest.approx(
            [1 / 3, 2 / 3, 1.0])

    @given(values)
    def test_fractions_monotone_to_one(self, xs):
        cdf = stats.cdf_points(xs)
        fractions = [p["fraction"] for p in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)


class TestGini:
    def test_equal_is_zero(self):
        assert stats.gini([2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_single_winner(self):
        # Gini of (1, 0, 0, 0) -> (n-1)/n = 0.75.
        assert stats.gini([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.75)

    def test_all_zero(self):
        assert stats.gini([0.0, 0.0]) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            stats.gini([1.0, -1.0])

    @given(values)
    @settings(max_examples=40)
    def test_bounds(self, xs):
        g = stats.gini(xs)
        assert -1e-9 <= g <= 1.0
