"""Tests for the monospace chart renderer."""

from __future__ import annotations

import math

import pytest

from repro.utils import ascii_chart


class TestAsciiChart:
    def test_single_series_renders(self):
        text = ascii_chart({"a": [(0, 0.0), (10, 1.0)]}, width=20, height=5)
        assert "o a" in text  # legend
        assert "|" in text

    def test_title_first_line(self):
        text = ascii_chart({"a": [(0, 0), (1, 1)]}, title="My Chart")
        assert text.splitlines()[0] == "My Chart"

    def test_multiple_series_distinct_glyphs(self):
        text = ascii_chart({
            "low": [(0, 0.0), (10, 0.0)],
            "high": [(0, 1.0), (10, 1.0)],
        }, width=20, height=5)
        lines = text.splitlines()
        top_rows = "".join(lines[:2])
        bottom_rows = "".join(lines[3:6])
        assert "x" in top_rows      # second series at the top
        assert "o" in bottom_rows   # first series at the bottom

    def test_axis_labels_show_bounds(self):
        text = ascii_chart({"a": [(2.0, 5.0), (12.0, 15.0)]},
                           width=20, height=5)
        assert "15" in text
        assert "5" in text
        assert "2" in text and "12" in text

    def test_skips_nonfinite_points(self):
        text = ascii_chart({"a": [(0, 1.0), (1, math.inf), (2, 2.0)]},
                           width=20, height=5)
        assert text  # no crash; inf point dropped

    def test_y_max_clips(self):
        text = ascii_chart({"a": [(0, 1.0), (1, 100.0)]},
                           width=20, height=5, y_max=2.0)
        assert "100" not in text
        assert "2" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": [(0, math.nan)]})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": [(0, 1)]}, width=2, height=2)

    def test_constant_series_handled(self):
        text = ascii_chart({"a": [(0, 3.0), (5, 3.0)]}, width=20, height=5)
        assert text  # degenerate y-range widened internally

    def test_line_width_bounded(self):
        text = ascii_chart({"a": [(0, 0), (1, 1)]}, width=30, height=6)
        body_lines = [l for l in text.splitlines() if "|" in l]
        assert all(len(l) <= 40 for l in body_lines)
