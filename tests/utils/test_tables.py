"""Tests for text-table rendering."""

from __future__ import annotations

import pytest

from repro.utils import format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "x"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len({line.index("1") if "1" in line else None
                    for line in lines[2:]}) >= 1

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_none_rendered_as_dash(self):
        text = format_table(["a"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_float_format(self):
        text = format_table(["a"], [[1.23456]], float_format=".2f")
        assert "1.23" in text
        assert "1.2345" not in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_separator_width_matches(self):
        text = format_table(["ab", "cdef"], [["x", "y"]])
        header, sep = text.splitlines()[:2]
        assert len(sep) >= len(header.rstrip())
