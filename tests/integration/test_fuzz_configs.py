"""Property-based fuzzing: invariants hold for arbitrary configurations.

Hypothesis generates random (small) swarm configurations — algorithm,
population, file size, capacities, free-rider share, attack flags,
arrival process — and asserts the invariants that must survive any of
them: conservation, bounded downloads, free-rider abstinence, monotone
series, and determinism of the run under its seed.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.names import EXTENDED_ALGORITHMS
from repro.sim import AttackConfig, CapacityClass, SimulationConfig
from repro.sim.metrics import metrics_digest
from repro.sim.runner import run_simulation


@st.composite
def sim_configs(draw):
    algorithm = draw(st.sampled_from(EXTENDED_ALGORITHMS))
    n_users = draw(st.integers(10, 40))
    n_pieces = draw(st.integers(4, 20))
    freerider_fraction = draw(st.sampled_from([0.0, 0.2, 0.4]))
    attack = AttackConfig(
        collusion=draw(st.booleans()),
        whitewash_interval=draw(st.sampled_from([None, 10])),
        false_praise=draw(st.booleans()),
        large_view=draw(st.booleans()),
    )
    fast_fraction = draw(st.floats(min_value=0.1, max_value=0.9))
    classes = (
        CapacityClass(fast_fraction, draw(st.sampled_from([2.0, 4.0]))),
        CapacityClass(1.0 - fast_fraction,
                      draw(st.sampled_from([0.5, 1.0]))),
    )
    arrival = draw(st.sampled_from(["flash", "poisson"]))
    return SimulationConfig(
        algorithm=algorithm,
        n_users=n_users,
        n_pieces=n_pieces,
        capacity_classes=classes,
        seeder_capacity=draw(st.sampled_from([0.5, 2.0])),
        flash_crowd_duration=draw(st.sampled_from([0.0, 5.0])),
        arrival_process=arrival,
        arrival_rate=5.0,
        freerider_fraction=freerider_fraction,
        attack=attack,
        neighbor_count=draw(st.integers(3, 20)),
        max_rounds=120,
        seed=draw(st.integers(0, 10_000)),
    )


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sim_configs())
def test_invariants_for_arbitrary_configs(config):
    result = run_simulation(config)
    metrics = result.metrics

    # Eq. 1 as a ledger identity.
    assert result.conservation_holds()

    # Per-peer sanity.
    assert len(metrics.peers) == config.n_users
    for peer in metrics.peers:
        assert 0 <= peer.downloaded <= config.n_pieces
        assert peer.uploaded >= 0
        if peer.is_freerider:
            assert peer.uploaded == 0
        if peer.completion_time is not None:
            assert peer.bootstrap_time is not None
            assert peer.arrival_time <= peer.completion_time

    # Series sanity.
    boot_fractions = [s.bootstrapped_fraction for s in metrics.samples]
    assert all(0.0 <= f <= 1.0 for f in boot_fractions)
    assert boot_fractions == sorted(boot_fractions)
    assert 0.0 <= metrics.susceptibility() <= 1.0

    # Susceptibility requires free-riders.
    if config.n_freeriders == 0:
        assert metrics.susceptibility() == 0.0


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sim_configs())
def test_determinism_for_arbitrary_configs(config):
    first = run_simulation(config).metrics
    second = run_simulation(config).metrics
    assert first.total_uploaded == second.total_uploaded
    assert first.completion_times() == second.completion_times()
    assert first.susceptibility() == second.susceptibility()

_BACKEND_EXAMPLES = int(os.environ.get("BACKEND_FUZZ_EXAMPLES", "15"))


@settings(max_examples=_BACKEND_EXAMPLES, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sim_configs())
def test_vector_backend_digest_parity_for_arbitrary_configs(config):
    """The struct-of-arrays backend must be byte-identical to the
    object engine for every configuration it supports — arbitrary
    algorithm, attack mix, capacities, and arrival process."""
    object_metrics = run_simulation(config).metrics
    vector_metrics = run_simulation(config.with_backend("vector")).metrics
    assert metrics_digest(object_metrics) == metrics_digest(vector_metrics)


# Guard fuzz: arbitrary configurations must produce ZERO invariant
# violations under full guards, and guards must never perturb the
# physics (identical digests with and without them). CI's quick mode
# shrinks the example budget via GUARD_FUZZ_EXAMPLES.
_GUARD_EXAMPLES = int(os.environ.get("GUARD_FUZZ_EXAMPLES", "15"))


@settings(max_examples=_GUARD_EXAMPLES, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sim_configs())
def test_guards_full_zero_violations_and_digest_stable(config):
    # A window wider than max_rounds keeps the watchdog out of the
    # picture: this test is about the invariant checks alone.
    guarded_config = config.with_guards("full", watchdog_window=400)
    bare = run_simulation(config).metrics
    guarded = run_simulation(guarded_config).metrics  # raises on violation
    assert not guarded.degraded
    assert metrics_digest(bare) == metrics_digest(guarded)
