"""Shape-contract validation of the hybrid engine vs. full runs.

The EXPERIMENTS.md contract, per mechanism, at 1k peers in
full-sampling mode (K * m == population, shard weight 1): KS on
completion times must not detect a difference (p > 0.01), fairness
and completion-fraction CIs must overlap, and ranking mechanisms by
mean completion time must agree with the reference.

``HYBRID_PARITY_SEEDS`` scales the seed panel (default 3 keeps the
tier-1 run under a minute; CI and local deep runs can raise it).
``HYBRID_SMOKE=1`` additionally runs a 10k-population smoke for one
mechanism against a full 10k event-driven reference — minutes of
wall clock, so it is reserved for the CI hybrid-smoke step (see
.github/workflows/ci.yml) and explicit local invocation.
"""

from __future__ import annotations

import os

import pytest

from repro.names import EXTENDED_ALGORITHMS, Algorithm
from repro.experiments.hybrid_validation import (
    quantile_skeleton,
    validate_hybrid_engine,
    validate_mechanism,
    validation_config,
)

N_SEEDS = max(2, int(os.environ.get("HYBRID_PARITY_SEEDS", "3")))

_report_cache = {}


def report():
    if "report" not in _report_cache:
        _report_cache["report"] = validate_hybrid_engine(
            seeds=range(N_SEEDS))
    return _report_cache["report"]


def verdict_for(algorithm: Algorithm):
    for verdict in report().verdicts:
        if verdict.algorithm is algorithm:
            return verdict
    raise AssertionError(f"no verdict for {algorithm}")


class TestQuantileSkeleton:
    def test_passthrough_below_cap(self):
        assert quantile_skeleton([3.0, 1.0, 2.0], 10) == [1.0, 2.0, 3.0]

    def test_thins_deterministically(self):
        values = [float(i) for i in range(1000)]
        thinned = quantile_skeleton(values, 100)
        assert len(thinned) == 100
        assert thinned == quantile_skeleton(values, 100)
        assert thinned[0] == 0.0
        # Evenly spaced through the CDF, not a prefix.
        assert thinned[-1] >= 980.0


@pytest.mark.parametrize("algorithm", EXTENDED_ALGORITHMS,
                         ids=[a.value for a in EXTENDED_ALGORITHMS])
class TestShapeContract:
    def test_completion_time_distribution(self, algorithm):
        verdict = verdict_for(algorithm)
        if verdict.completion is None:
            # No completions on either side (pure reciprocity at this
            # scale): both engines agree the mechanism is off the
            # scale, which the fraction CI pins below.
            assert verdict.hybrid_mean_completion == float("inf")
            assert verdict.reference_mean_completion == float("inf")
            return
        assert verdict.completion["ks_pass"], (
            f"{algorithm.value}: KS p={verdict.completion['p']:.4f} "
            f"D={verdict.completion['d']:.4f}")
        assert verdict.completion["ci_overlap"]

    def test_fairness_ci_overlap(self, algorithm):
        verdict = verdict_for(algorithm)
        assert verdict.fairness_ci_overlap in (True, None)

    def test_completion_fraction_ci_overlap(self, algorithm):
        assert verdict_for(algorithm).completion_fraction_ci_overlap

    def test_verdict_passes(self, algorithm):
        assert verdict_for(algorithm).passed


class TestOrdering:
    def test_mechanism_ranking_preserved(self):
        assert report().ranking_agreement == pytest.approx(1.0)

    def test_suite_verdict(self):
        assert report().passed


@pytest.mark.skipif(os.environ.get("HYBRID_SMOKE") != "1",
                    reason="10k-population smoke reserved for CI "
                           "(set HYBRID_SMOKE=1)")
class TestTenThousandPeerSmoke:
    def test_10k_population_matches_full_reference(self):
        config = validation_config(Algorithm.TCHAIN, population=10_000,
                                   n_subswarms=8)
        verdict = validate_mechanism(config, seeds=range(2))
        assert verdict.passed, verdict.as_dict()
