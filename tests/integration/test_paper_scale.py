"""Paper-scale runs (1000 users, 512 pieces) — opt-in, minutes each.

Select with ``pytest -m slow``. These confirm the Section V-A
configuration is faithfully runnable end to end and that the headline
claims hold at the paper's own scale, not just the scaled-down
defaults; EXPERIMENTS.md records reference numbers from one such run.
"""

from __future__ import annotations

import pytest

from repro.experiments.scenarios import paper_scale
from repro.names import Algorithm
from repro.sim import run_simulation

pytestmark = pytest.mark.slow


class TestPaperScale:
    def test_altruism_completes_fleet(self):
        result = run_simulation(paper_scale(Algorithm.ALTRUISM, seed=1))
        metrics = result.metrics
        assert result.conservation_holds()
        assert metrics.completion_fraction() > 0.99
        # Within the paper's ~600 s plotting window.
        assert metrics.mean_completion_time() < 600.0
        assert metrics.final_fairness() == pytest.approx(1.0, abs=0.1)

    def test_tchain_fair_and_complete(self):
        result = run_simulation(paper_scale(Algorithm.TCHAIN, seed=1))
        metrics = result.metrics
        assert metrics.completion_fraction() > 0.99
        assert metrics.final_fairness() == pytest.approx(1.0, abs=0.05)
        assert metrics.mean_bootstrap_time() < 5.0

    def test_reciprocity_never_completes_anyone(self):
        """At the paper's scale the seeder cannot finish a single user
        within the cap — Figure 4a's flat zero line, exactly."""
        config = paper_scale(Algorithm.RECIPROCITY, seed=1)
        metrics = run_simulation(config).metrics
        assert metrics.completion_fraction() == 0.0
        assert metrics.peer_uploaded == 0
