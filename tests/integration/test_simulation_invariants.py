"""System-level invariants that must hold for every algorithm and run."""

from __future__ import annotations


import pytest

from repro.experiments.scenarios import smoke_scale, with_freeriders
from repro.names import ALL_ALGORITHMS, Algorithm
from repro.sim import run_simulation
from repro.sim.runner import Simulation


@pytest.fixture(scope="module", params=[a.value for a in ALL_ALGORITHMS])
def result(request):
    """One completed smoke-scale run per algorithm (module-cached)."""
    config = smoke_scale(Algorithm.parse(request.param), seed=17)
    return run_simulation(config)


class TestConservation:
    def test_eq1_every_piece_sent_is_received(self, result):
        assert result.conservation_holds()
        assert result.metrics.total_uploaded == (
            result.metrics.total_received_raw)

    def test_downloads_bounded_by_file_size(self, result):
        for peer in result.metrics.peers:
            assert peer.downloaded <= result.config.n_pieces

    def test_uploads_bounded_by_capacity(self, result):
        """No peer exceeds capacity * residence-time (plus burst slack)."""
        rounds = result.metrics.rounds_run
        for peer in result.metrics.peers:
            limit = peer.capacity * rounds + max(2 * peer.capacity, 1) + 1
            assert peer.uploaded <= limit

    def test_freeriders_upload_nothing(self):
        config = with_freeriders(smoke_scale(Algorithm.ALTRUISM, seed=3),
                                 fraction=0.25)
        metrics = run_simulation(config).metrics
        for peer in metrics.peers:
            if peer.is_freerider:
                assert peer.uploaded == 0


class TestLifecycle:
    def test_everyone_arrives(self, result):
        assert len(result.metrics.peers) == result.config.n_users

    def test_completion_implies_bootstrap(self, result):
        for peer in result.metrics.peers:
            if peer.completion_time is not None:
                assert peer.bootstrap_time is not None
                assert peer.bootstrap_time <= peer.completion_time

    def test_completion_after_arrival(self, result):
        for peer in result.metrics.peers:
            if peer.completion_time is not None:
                assert peer.completion_time >= peer.arrival_time

    def test_completed_users_downloaded_everything(self, result):
        for peer in result.metrics.peers:
            if peer.completion_time is not None and not peer.is_freerider:
                assert peer.downloaded >= result.config.n_pieces * 0.99

    def test_samples_cover_run(self, result):
        samples = result.metrics.samples
        assert samples
        times = [s.time for s in samples]
        assert times == sorted(times)
        assert samples[-1].arrived == result.config.n_users


class TestMonotoneSeries:
    def test_bootstrap_fraction_nondecreasing(self, result):
        fractions = [s.bootstrapped_fraction for s in result.metrics.samples]
        assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))

    def test_completed_nondecreasing(self, result):
        completed = [s.completed for s in result.metrics.samples]
        assert all(a <= b for a, b in zip(completed, completed[1:]))

    def test_uploads_nondecreasing(self, result):
        uploads = [s.total_uploaded for s in result.metrics.samples]
        assert all(a <= b for a, b in zip(uploads, uploads[1:]))


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        config = smoke_scale(Algorithm.BITTORRENT, seed=23)
        a = run_simulation(config).metrics
        b = run_simulation(config).metrics
        assert a.total_uploaded == b.total_uploaded
        assert a.completion_times() == b.completion_times()
        assert [s.bootstrapped for s in a.samples] == [
            s.bootstrapped for s in b.samples]

    def test_different_seeds_differ(self):
        base = smoke_scale(Algorithm.BITTORRENT, seed=23)
        a = run_simulation(base).metrics
        b = run_simulation(base.with_seed(24)).metrics
        assert a.completion_times() != b.completion_times()

    def test_runner_reusable_config(self):
        """Running twice from the same config object must not share
        state between Simulation instances."""
        config = smoke_scale(Algorithm.TCHAIN, seed=5)
        sim1 = Simulation(config)
        r1 = sim1.run()
        sim2 = Simulation(config)
        r2 = sim2.run()
        assert r1.metrics.total_uploaded == r2.metrics.total_uploaded


class TestTermination:
    def test_stops_when_compliant_done(self):
        config = smoke_scale(Algorithm.ALTRUISM, seed=2)
        metrics = run_simulation(config).metrics
        assert metrics.completion_fraction() == pytest.approx(1.0)
        assert metrics.rounds_run < config.max_rounds

    def test_reciprocity_hits_round_cap(self):
        """Reciprocity stalls: only the seeder's random spray moves
        data, so the swarm cannot finish within the round cap. (At
        smoke scale the seeder may luck a handful of users through;
        at paper scale nobody completes at all, cf. Fig. 4a.)"""
        config = smoke_scale(Algorithm.RECIPROCITY, seed=2)
        metrics = run_simulation(config).metrics
        assert metrics.rounds_run == config.max_rounds
        assert metrics.completion_fraction() < 0.2
        assert metrics.peer_uploaded == 0  # users never upload
