"""Seed-pinned metrics-digest equivalence for all six mechanisms.

The hot-path rewrite (bitmask piece sets, bucketed availability,
incrementally maintained neighbor/needy caches) must be *invisible*:
for a fixed seed, the metrics of a run — every sample, every peer
summary, every fault counter — must be byte-identical to the eager
pre-rewrite implementation. These digests were captured from the
pre-rewrite code with exactly one behavioural fix applied: the
rarest-first tie-break enumerates candidates in ascending piece order
(the old code drew from ``set`` iteration order, which varies across
Python builds, so its seeds did not reproduce across versions).

Because the digest covers float reprs, and float repr is portable,
the same constants must hold on every supported Python version — a
3.10 run and a 3.12 run of this test assert the same hashes, which is
the cross-version determinism guarantee in executable form. If a
change legitimately moves these numbers, justify it and re-pin.
"""

from __future__ import annotations

import pytest

from repro.names import ALL_ALGORITHMS, EXTENDED_ALGORITHMS, Algorithm
from repro.sim.config import SimulationConfig, targeted_attack_for
from repro.sim.faults import FaultConfig
from repro.sim.metrics import metrics_digest
from repro.sim.runner import run_simulation

#: Captured from the pre-rewrite implementation (sorted tie-break
#: applied) under the config below; the current code must match.
PINNED_DIGESTS = {
    Algorithm.RECIPROCITY:
        "e77cb8033cdf7e1552249aae6c17e2bd45e1caf9a1ed50ee982b911950cefc5e",
    Algorithm.TCHAIN:
        "b95f078fe88090b353f7776933a422a474b50fd58b81ac185f29c19000603da4",
    Algorithm.BITTORRENT:
        "3d3c4c185cbbb444dee4a293c6baa590b5474adcb9e62f6caac2c252ad80734f",
    Algorithm.FAIRTORRENT:
        "ee2864578942d123cf61eb83f1c8a85ad77a774ace6c79b40dd6ab13f7b28ace",
    Algorithm.REPUTATION:
        "3ccb6f8d6f0f97a1420991307493aeead0f063b0975de28beaf5db9a4c630b4c",
    Algorithm.ALTRUISM:
        "bcfc8959df9684c708ae52ae852399ce92dc59b427b16b0ceaea858c425e788d",
}


def equivalence_config(algorithm: Algorithm) -> SimulationConfig:
    """Free-riders plus each mechanism's targeted attack, so the run
    exercises whitewashing, collusion, and the reputation board — the
    paths most sensitive to iteration order and cache staleness."""
    return SimulationConfig(
        algorithm=algorithm,
        n_users=40,
        n_pieces=32,
        max_rounds=300,
        freerider_fraction=0.2,
        attack=targeted_attack_for(algorithm),
        neighbor_count=12,
        seed=7,
    )


class TestSeedPinnedDigests:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS,
                             ids=[a.value for a in ALL_ALGORITHMS])
    def test_metrics_digest_matches_pre_rewrite_reference(self, algorithm):
        metrics = run_simulation(equivalence_config(algorithm)).metrics
        assert metrics_digest(metrics) == PINNED_DIGESTS[algorithm]

    def test_repeat_run_reproduces_digest(self):
        config = equivalence_config(Algorithm.RECIPROCITY)
        first = metrics_digest(run_simulation(config).metrics)
        second = metrics_digest(run_simulation(config).metrics)
        assert first == second == PINNED_DIGESTS[Algorithm.RECIPROCITY]


class TestVectorBackendParity:
    """The struct-of-arrays backend is an alternative *engine*, not an
    alternative *model*: for every supported configuration it must
    reproduce the object engine's metrics byte-for-byte.  Pinning the
    vector backend against the same pre-rewrite digests makes the two
    engines mutually checking oracles."""

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS,
                             ids=[a.value for a in ALL_ALGORITHMS])
    def test_vector_backend_matches_pinned_digest(self, algorithm):
        config = equivalence_config(algorithm).with_backend("vector")
        metrics = run_simulation(config).metrics
        assert metrics_digest(metrics) == PINNED_DIGESTS[algorithm]

    def test_propshare_backends_agree(self):
        # Propshare has no pinned digest (it is the seventh, extension
        # algorithm), so compare the two engines against each other.
        config = equivalence_config(Algorithm.PROPSHARE)
        object_digest = metrics_digest(run_simulation(config).metrics)
        vector_digest = metrics_digest(
            run_simulation(config.with_backend("vector")).metrics)
        assert object_digest == vector_digest


#: One entry per fault axis (individually), plus all five at once.
#: Rates are high enough that every axis demonstrably fires at this
#: scale (crashes, dropped reports, expired obligations all nonzero
#: for at least some mechanisms) without collapsing the swarm.
FAULT_AXES = {
    "loss": FaultConfig(transfer_loss_rate=0.15),
    "crashes": FaultConfig(crash_hazard=0.004),
    "outages": FaultConfig(seeder_outage_rate=0.2,
                           seeder_outage_duration=4),
    "delayed-reports": FaultConfig(report_delay_rounds=3),
    "expiry": FaultConfig(transfer_loss_rate=0.15,
                          obligation_expiry_rounds=6),
    "combined": FaultConfig(transfer_loss_rate=0.1, crash_hazard=0.003,
                            seeder_outage_rate=0.1,
                            seeder_outage_duration=3,
                            report_delay_rounds=2,
                            obligation_expiry_rounds=8),
}


def faulted_config(algorithm: Algorithm, faults: FaultConfig,
                   ) -> SimulationConfig:
    """A lighter sibling of ``equivalence_config`` (faulted runs go
    through extra per-round phases, and this matrix is 7 mechanisms
    by 6 axes by 2 engines)."""
    return SimulationConfig(
        algorithm=algorithm,
        n_users=40,
        n_pieces=24,
        max_rounds=160,
        freerider_fraction=0.2,
        attack=targeted_attack_for(algorithm),
        neighbor_count=12,
        seed=7,
        faults=faults,
    )


class TestFaultAxisParity:
    """PR 9 tentpole contract: every fault axis — individually and all
    combined — runs on ``backend="vector"`` with metrics (including
    the fault counters the digest covers) byte-identical to the object
    engine, across all seven mechanisms."""

    @pytest.mark.parametrize("axis", list(FAULT_AXES),
                             ids=list(FAULT_AXES))
    @pytest.mark.parametrize("algorithm", EXTENDED_ALGORITHMS,
                             ids=[a.value for a in EXTENDED_ALGORITHMS])
    def test_object_and_vector_agree_under_faults(self, algorithm, axis):
        config = faulted_config(algorithm, FAULT_AXES[axis])
        object_result = run_simulation(config)
        vector_result = run_simulation(config.with_backend("vector"))
        assert vector_result.metrics.backend_downgraded is None
        assert (metrics_digest(object_result.metrics)
                == metrics_digest(vector_result.metrics))
        assert (object_result.metrics.faults
                == vector_result.metrics.faults)


class TestGuardsPreserveDigests:
    """Guards are observation-only: the pinned digests must survive
    running every check every round (the strictest mode there is)."""

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS,
                             ids=[a.value for a in ALL_ALGORITHMS])
    def test_full_guards_keep_pinned_digest(self, algorithm, tmp_path):
        config = equivalence_config(algorithm).with_guards(
            "full", watchdog_window=400, bundle_dir=str(tmp_path))
        metrics = run_simulation(config).metrics
        assert not metrics.degraded
        assert metrics_digest(metrics) == PINNED_DIGESTS[algorithm]


class TestObsPreservesDigests:
    """The observability layer is observation-only: tracing at full
    sampling, every-round gauge sampling, and span profiling all on
    at once must leave every pinned digest byte-identical."""

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS,
                             ids=[a.value for a in ALL_ALGORITHMS])
    def test_full_instrumentation_keeps_pinned_digest(self, algorithm):
        config = equivalence_config(algorithm).with_obs(
            trace=True, sample_every=1, profile=True)
        metrics = run_simulation(config).metrics
        # The payload rode along, but outside the digest.
        assert metrics.obs is not None
        assert set(metrics.obs) == {"series", "profile", "trace"}
        assert metrics_digest(metrics) == PINNED_DIGESTS[algorithm]

    def test_obs_and_full_guards_together_keep_digest(self, tmp_path):
        config = equivalence_config(Algorithm.TCHAIN).with_guards(
            "full", watchdog_window=400, bundle_dir=str(tmp_path)
        ).with_obs(trace=True, sample_every=1, profile=True)
        metrics = run_simulation(config).metrics
        assert metrics_digest(metrics) == PINNED_DIGESTS[Algorithm.TCHAIN]
