"""Tests for multi-seeder swarms, churn, and transfer tracing."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.scenarios import smoke_scale
from repro.names import Algorithm
from repro.sim import run_simulation


class TestMultiSeeder:
    def test_reciprocity_throughput_scales_with_seeders(self):
        """Reciprocity's only channel is the seeders (Table II: n_S/N),
        so doubling them roughly doubles dissemination."""
        base = smoke_scale(Algorithm.RECIPROCITY, seed=9)
        one = run_simulation(replace(base, n_seeders=1)).metrics
        four = run_simulation(replace(base, n_seeders=4)).metrics
        # Per-round distribution rate scales near-linearly with n_S.
        rate_one = sum(p.downloaded for p in one.peers) / one.rounds_run
        rate_four = sum(p.downloaded for p in four.peers) / four.rounds_run
        assert rate_four > 2.5 * rate_one
        # At smoke scale one seeder cannot finish anyone within the
        # cap, four can finish everyone.
        assert one.completion_fraction() < four.completion_fraction()
        assert four.time_to_bootstrap_fraction(0.9) <= (
            one.time_to_bootstrap_fraction(0.9))

    def test_extra_seeders_never_slow_completion(self):
        base = smoke_scale(Algorithm.BITTORRENT, seed=9)
        one = run_simulation(replace(base, n_seeders=1)).metrics
        three = run_simulation(replace(base, n_seeders=3)).metrics
        assert (three.mean_completion_time()
                <= one.mean_completion_time() * 1.15)

    def test_conservation_with_many_seeders(self):
        result = run_simulation(replace(smoke_scale(Algorithm.TCHAIN, seed=9),
                                        n_seeders=3))
        assert result.conservation_holds()


class TestChurn:
    def test_aborters_never_complete(self):
        config = replace(smoke_scale(Algorithm.ALTRUISM, seed=10),
                         abort_rate=0.02)
        metrics = run_simulation(config).metrics
        aborted = [p for p in metrics.peers if p.completion_time is None]
        assert aborted  # churn actually happened
        assert metrics.completion_fraction() < 1.0

    def test_zero_churn_everybody_finishes(self):
        config = replace(smoke_scale(Algorithm.ALTRUISM, seed=10),
                         abort_rate=0.0)
        metrics = run_simulation(config).metrics
        assert metrics.completion_fraction() == pytest.approx(1.0)

    def test_invariants_survive_churn(self):
        config = replace(smoke_scale(Algorithm.TCHAIN, seed=10),
                         abort_rate=0.03)
        result = run_simulation(config)
        assert result.conservation_holds()
        for peer in result.metrics.peers:
            assert peer.downloaded <= config.n_pieces

    def test_seeders_immune_to_churn(self):
        config = replace(smoke_scale(Algorithm.ALTRUISM, seed=10),
                         abort_rate=0.5, max_rounds=60)
        metrics = run_simulation(config).metrics
        # Massive churn: the run still progresses because the seeder
        # stays; every sample was collected without error.
        assert metrics.samples


class TestTransferTraces:
    @pytest.fixture(scope="class")
    def traced(self):
        config = replace(smoke_scale(Algorithm.TCHAIN, seed=11),
                         record_transfers=True)
        return run_simulation(config)

    def test_traces_match_upload_totals(self, traced):
        assert len(traced.metrics.transfers) == traced.metrics.total_uploaded

    def test_trace_kinds(self, traced):
        kinds = {t.kind for t in traced.metrics.transfers}
        assert kinds <= {"plain", "seed", "forward"}
        assert "seed" in kinds  # T-Chain's opportunistic uploads

    def test_no_self_transfers(self, traced):
        assert all(t.uploader_id != t.target_id
                   for t in traced.metrics.transfers)

    def test_times_nondecreasing(self, traced):
        times = [t.time for t in traced.metrics.transfers]
        assert times == sorted(times)

    def test_freeriders_absent_as_uploaders(self):
        config = replace(smoke_scale(Algorithm.ALTRUISM, seed=11),
                         record_transfers=True, freerider_fraction=0.3)
        result = run_simulation(config)
        freerider_lineages = {p.peer_id for p in result.metrics.peers
                              if p.is_freerider}
        for record in result.metrics.transfers:
            assert record.uploader_id not in freerider_lineages

    def test_off_by_default(self):
        result = run_simulation(smoke_scale(Algorithm.ALTRUISM, seed=11))
        assert result.metrics.transfers == []
