"""Cross-backend differential fault fuzzer (PR 9 tentpole guard).

Three layers of defence around the vector engines' fault injection:

* **Randomized digest parity** — a seeded generator draws arbitrary
  ``FaultConfig``s (any subset of the five axes, rates across their
  whole legal ranges including the 1.0 stress corner) paired with
  varied swarm shapes, and asserts the object and vector engines
  produce byte-identical metrics digests *and* identical fault-counter
  structs. ``FAULT_FUZZ_CASES`` shrinks the case count for CI smoke.
* **Property harness** — a Hypothesis strategy over the same space,
  so failures shrink to a minimal fault/config combination
  (``FAULT_FUZZ_EXAMPLES`` controls the budget).
* **Distributional parity under faults** — the fast lineage has no
  digest contract, so a fixed all-axes ``FaultConfig`` is run over a
  seed panel on both the object and vector-fast engines and compared
  with the same KS/CI machinery the fault-free distributional suite
  uses, plus a CI-overlap check on the crash counts themselves (the
  one axis whose *sampling algorithm* differs: per-member Bernoulli
  coins vs batched geometric gaps). ``FAULT_DIST_SEEDS`` shrinks the
  panel.

The random seeds and panels are fixed, so every check is
deterministic: a failure means an engine drifted, not bad luck.
"""

from __future__ import annotations

import os
import random
from typing import List

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.validation import (
    confidence_interval,
    distributional_equivalence,
    intervals_overlap,
)
from repro.names import Algorithm
from repro.sim.config import SimulationConfig, targeted_attack_for
from repro.sim.faults import FaultConfig
from repro.sim.metrics import degradation_rows, metrics_digest
from repro.sim.runner import run_simulation
from repro.sim.vector import vector_unsupported_reason

#: Randomized digest-parity cases (override for CI smoke).
N_FUZZ_CASES = max(1, int(os.environ.get("FAULT_FUZZ_CASES", "20")))
#: Hypothesis examples for the property harness.
N_FUZZ_EXAMPLES = max(1, int(os.environ.get("FAULT_FUZZ_EXAMPLES", "15")))
#: Seed-panel width for the fast-lineage distributional checks.
N_DIST_SEEDS = max(2, int(os.environ.get("FAULT_DIST_SEEDS", "30")))

_FUZZ_ALGORITHMS = (Algorithm.TCHAIN, Algorithm.REPUTATION,
                    Algorithm.BITTORRENT, Algorithm.FAIRTORRENT,
                    Algorithm.PROPSHARE)


def _random_fault_config(rng: random.Random) -> FaultConfig:
    """An arbitrary fault layer: each axis independently on or off,
    rates spanning the full legal range (loss and outage include the
    1.0 stress corner; the crash hazard stays small enough that some
    swarm usually survives, which is where parity bugs hide)."""
    return FaultConfig(
        transfer_loss_rate=(rng.choice([rng.uniform(0.0, 0.6), 1.0])
                            if rng.random() < 0.7 else 0.0),
        crash_hazard=(rng.uniform(0.0005, 0.02)
                      if rng.random() < 0.6 else 0.0),
        seeder_outage_rate=(rng.choice([rng.uniform(0.05, 0.6), 1.0])
                            if rng.random() < 0.5 else 0.0),
        seeder_outage_duration=rng.randint(1, 8),
        report_delay_rounds=(rng.randint(1, 6)
                             if rng.random() < 0.6 else 0),
        obligation_expiry_rounds=(rng.randint(1, 12)
                                  if rng.random() < 0.5 else None),
    )


def _random_config(rng: random.Random) -> SimulationConfig:
    algorithm = rng.choice(_FUZZ_ALGORITHMS)
    freeriders = rng.choice([0.0, 0.2, 0.3])
    return SimulationConfig(
        algorithm=algorithm,
        n_users=rng.randint(16, 48),
        n_pieces=rng.choice([8, 16, 24]),
        max_rounds=rng.randint(60, 180),
        freerider_fraction=freeriders,
        attack=targeted_attack_for(algorithm),
        neighbor_count=rng.randint(6, 14),
        arrival_process=rng.choice(["flash", "poisson"]),
        seed=rng.randint(0, 2**31),
        faults=_random_fault_config(rng),
        abort_rate=rng.choice([0.0, 0.0, 0.01]),
    )


def _assert_backends_agree(config: SimulationConfig) -> None:
    assert vector_unsupported_reason(config) is None
    object_result = run_simulation(config.with_backend("object"))
    vector_result = run_simulation(config.with_backend("vector"))
    assert vector_result.metrics.backend_downgraded is None
    assert (object_result.metrics.faults
            == vector_result.metrics.faults), config
    assert (metrics_digest(object_result.metrics)
            == metrics_digest(vector_result.metrics)), config


class TestRandomizedDigestParity:
    """Seeded random sweep over the (config, faults) product space."""

    @pytest.mark.parametrize("case", range(N_FUZZ_CASES))
    def test_object_and_vector_digests_agree(self, case):
        rng = random.Random(0xFA017 + case)
        _assert_backends_agree(_random_config(rng))

    def test_stress_corner_all_transfers_lost(self):
        """loss=1.0 — the corner the validation widening legalised:
        every send consumes budget and delivers nothing."""
        config = SimulationConfig(
            algorithm=Algorithm.TCHAIN, n_users=24, n_pieces=12,
            max_rounds=60, neighbor_count=8, seed=3,
            faults=FaultConfig(transfer_loss_rate=1.0,
                               obligation_expiry_rounds=4))
        _assert_backends_agree(config)
        result = run_simulation(config)
        assert result.metrics.completion_fraction() == 0.0
        assert result.metrics.faults.transfers_lost > 0

    def test_stress_corner_seeders_always_failing(self):
        """outage=1.0: seeders re-fail on every would-be recovery, so
        the swarm never receives a piece and no transfer is attempted."""
        config = SimulationConfig(
            algorithm=Algorithm.TCHAIN, n_users=24, n_pieces=12,
            max_rounds=60, neighbor_count=8, seed=3,
            faults=FaultConfig(seeder_outage_rate=1.0,
                               seeder_outage_duration=2))
        _assert_backends_agree(config)
        result = run_simulation(config)
        assert result.metrics.completion_fraction() == 0.0
        assert result.metrics.faults.seeder_outages > 0
        assert result.metrics.total_uploaded == 0


@st.composite
def faulted_configs(draw) -> SimulationConfig:
    algorithm = draw(st.sampled_from(_FUZZ_ALGORITHMS))
    faults = FaultConfig(
        transfer_loss_rate=draw(st.sampled_from([0.0, 0.1, 0.4, 1.0])),
        crash_hazard=draw(st.sampled_from([0.0, 0.002, 0.01])),
        seeder_outage_rate=draw(st.sampled_from([0.0, 0.2, 1.0])),
        seeder_outage_duration=draw(st.integers(min_value=1, max_value=6)),
        report_delay_rounds=draw(st.integers(min_value=0, max_value=5)),
        obligation_expiry_rounds=draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=10))),
    )
    return SimulationConfig(
        algorithm=algorithm,
        n_users=draw(st.integers(min_value=12, max_value=36)),
        n_pieces=draw(st.sampled_from([8, 16])),
        max_rounds=draw(st.integers(min_value=40, max_value=120)),
        freerider_fraction=draw(st.sampled_from([0.0, 0.25])),
        attack=targeted_attack_for(algorithm),
        neighbor_count=draw(st.integers(min_value=5, max_value=12)),
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        faults=faults,
    )


@settings(max_examples=N_FUZZ_EXAMPLES, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(config=faulted_configs())
def test_fault_parity_property(config):
    """Any legal fault layer on any small config: digests must agree."""
    _assert_backends_agree(config)


class TestDegradationRowParity:
    """degradation_rows — the consumer the ROADMAP wanted vectorized —
    must be identical whether its per-rate runs came from the object
    or the vector engine, including under the other fault axes."""

    LOSS_GRID = (0.0, 0.1, 0.25, 0.5)

    def _rows(self, backend: str) -> List[dict]:
        base = SimulationConfig(
            algorithm=Algorithm.TCHAIN, n_users=30, n_pieces=16,
            max_rounds=100, neighbor_count=8, seed=11, backend=backend,
            faults=FaultConfig(crash_hazard=0.003, report_delay_rounds=2,
                               obligation_expiry_rounds=8))
        runs = {}
        for rate in self.LOSS_GRID:
            config = base.with_faults(base.faults.with_loss_rate(rate))
            runs[rate] = run_simulation(config).metrics
        return degradation_rows(runs)

    def test_rows_identical_across_parity_backends(self):
        assert self._rows("object") == self._rows("vector")


#: Fixed all-axes fault layer for the fast-lineage checks: hot enough
#: that every counter moves at panel scale, mild enough that most of
#: the swarm still completes (completion times need survivors).
_DIST_FAULTS = FaultConfig(transfer_loss_rate=0.1, crash_hazard=0.004,
                           seeder_outage_rate=0.1,
                           seeder_outage_duration=3,
                           report_delay_rounds=2,
                           obligation_expiry_rounds=8)


def _fault_panel(backend: str) -> dict:
    completion: List[float] = []
    fairness: List[float] = []
    crashes: List[float] = []
    for seed in range(1, N_DIST_SEEDS + 1):
        config = SimulationConfig(
            algorithm=Algorithm.TCHAIN, n_users=32, n_pieces=16,
            max_rounds=120, neighbor_count=10, seed=seed,
            backend=backend, faults=_DIST_FAULTS)
        metrics = run_simulation(config).metrics
        assert metrics.backend_downgraded is None
        completion.extend(metrics.completion_times())
        ff = metrics.final_fairness()
        if ff is not None:
            fairness.append(ff)
        crashes.append(float(metrics.faults.peer_crashes))
    return {"completion": completion, "fairness": fairness,
            "crashes": crashes}


_FAULT_PANELS: dict = {}


def fault_panel(backend: str) -> dict:
    if backend not in _FAULT_PANELS:
        _FAULT_PANELS[backend] = _fault_panel(backend)
    return _FAULT_PANELS[backend]


class TestFastLineageFaultedDistributions:
    """Object vs vector-fast under the all-axes fault layer."""

    def test_completion_times_equivalent_under_faults(self):
        obj = fault_panel("object")["completion"]
        fast = fault_panel("vector-fast")["completion"]
        verdict = distributional_equivalence(obj, fast, alpha=0.01)
        assert verdict["ks_pass"], (
            f"faulted completion-time KS rejected equivalence "
            f"(D={verdict['d']:.4f}, p={verdict['p']:.4g})")
        assert verdict["ci_overlap"], (
            f"faulted completion-time CIs disjoint "
            f"({verdict['ci_a']} vs {verdict['ci_b']})")

    def test_fairness_cis_overlap_under_faults(self):
        ci_obj = confidence_interval(fault_panel("object")["fairness"])
        ci_fast = confidence_interval(
            fault_panel("vector-fast")["fairness"])
        assert intervals_overlap(ci_obj, ci_fast), (ci_obj, ci_fast)

    def test_crash_counts_statistically_equivalent(self):
        """The fast engine samples crashes by geometric gaps instead of
        per-member coins; the per-run crash totals must still come from
        the same Binomial family — CIs overlap across the panel."""
        obj = fault_panel("object")["crashes"]
        fast = fault_panel("vector-fast")["crashes"]
        ci_obj = confidence_interval(obj)
        ci_fast = confidence_interval(fast)
        assert intervals_overlap(ci_obj, ci_fast), (ci_obj, ci_fast)
        assert sum(fast) > 0, "crash axis never fired on the fast engine"

    def test_fault_counters_move_on_both_engines(self):
        """Every axis of an all-axes layer actually fires — a parity
        suite comparing zeros to zeros would prove nothing. Loss and
        expiry run hotter than the distributional layer so expired
        obligations are plentiful at this scale."""
        hot = FaultConfig(transfer_loss_rate=0.25, crash_hazard=0.004,
                          seeder_outage_rate=0.1, seeder_outage_duration=3,
                          report_delay_rounds=2, obligation_expiry_rounds=4)
        for backend in ("object", "vector-fast"):
            totals = [0, 0, 0, 0, 0]
            for seed in (1, 2, 3, 4, 5):
                config = SimulationConfig(
                    algorithm=Algorithm.TCHAIN, n_users=32, n_pieces=16,
                    max_rounds=120, neighbor_count=10, seed=seed,
                    backend=backend, faults=hot)
                f = run_simulation(config).metrics.faults
                totals[0] += f.transfers_lost
                totals[1] += f.peer_crashes
                totals[2] += f.seeder_outages
                totals[3] += f.delayed_reports
                totals[4] += f.obligations_expired
            assert all(t > 0 for t in totals), (backend, totals)
