"""Distributional parity: the fast lineage vs. the object oracle.

``backend="vector-fast"`` trades draw-for-draw parity for speed: its
runs are *statistically* equivalent to the object engine's, not
byte-identical. This suite is the contract that makes that trade
safe. For every mechanism it runs both engines across a seed panel
(default 30 seeds; override with ``DIST_PARITY_SEEDS`` for a quick
smoke) and asserts, via :mod:`repro.experiments.validation`:

* the pooled per-peer completion-time distributions are KS-
  indistinguishable (``p > 0.01``) with overlapping 95% CIs;
* the per-seed final-fairness means have overlapping 95% CIs;
* the paper-anchored orderings from EXPERIMENTS.md survive on the
  fast lineage — reciprocity's bootstrap collapse (E9), altruism's
  fastest clean downloads, and T-Chain's near-1 fairness (E12);
* every fast run is tagged ``digest_lineage="fast-v1"`` — in its
  metrics, in sweep journal records, and in result-cache entries —
  and the sweep fingerprint separates the lineages so a fast sweep
  can never consume (or poison) a parity-lineage cache or journal.

The seed panel is fixed, so the statistical checks are deterministic:
they were verified to pass at the pinned alpha before being committed,
and a regression here means the fast engine's dynamics drifted, not
that the dice came up wrong.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List

import pytest

from repro.dist.cache import ResultCache
from repro.experiments.replicates import (
    _config_fingerprint,
    run_resilient_sweep,
)
from repro.experiments.validation import (
    confidence_interval,
    distributional_equivalence,
    intervals_overlap,
)
from repro.names import EXTENDED_ALGORITHMS, Algorithm
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_simulation

#: Seeds per (algorithm, backend) cell. The acceptance bar is >= 30;
#: CI smoke jobs may shrink it via the environment (validated to pass
#: down to 10 — below that the CI-overlap checks get too tight).
N_SEEDS = max(2, int(os.environ.get("DIST_PARITY_SEEDS", "30")))
SEEDS = tuple(range(1, N_SEEDS + 1))

ALGORITHMS = EXTENDED_ALGORITHMS


def parity_config(algorithm: Algorithm, seed: int,
                  backend: str = "object") -> SimulationConfig:
    """Small flash-crowd swarm: big enough for stable statistics,
    small enough that 7 algorithms x 2 engines x 30 seeds stays in
    single-digit seconds."""
    return SimulationConfig(algorithm=algorithm, n_users=32, n_pieces=16,
                            max_rounds=120, neighbor_count=10,
                            backend=backend, seed=seed)


#: (algorithm, backend) -> {"completion": [...], "fairness": [...],
#: "mean_completion": [...]} — populated lazily, shared across tests.
_PANEL: Dict[tuple, Dict[str, List[float]]] = {}


def panel(algorithm: Algorithm, backend: str) -> Dict[str, List[float]]:
    key = (algorithm, backend)
    if key not in _PANEL:
        expected = "fast-v1" if backend == "vector-fast" else "parity-v1"
        completion: List[float] = []
        fairness: List[float] = []
        mean_completion: List[float] = []
        for seed in SEEDS:
            metrics = run_simulation(
                parity_config(algorithm, seed, backend)).metrics
            assert metrics.digest_lineage == expected
            completion.extend(metrics.completion_times())
            ff = metrics.final_fairness()
            if ff is not None:
                fairness.append(ff)
            mc = metrics.mean_completion_time()
            if math.isfinite(mc):
                mean_completion.append(mc)
        _PANEL[key] = {"completion": completion, "fairness": fairness,
                       "mean_completion": mean_completion}
    return _PANEL[key]


@pytest.mark.parametrize("algorithm", ALGORITHMS,
                         ids=[a.value for a in ALGORITHMS])
def test_completion_times_distributionally_equivalent(algorithm):
    """Pooled per-peer completion times: KS p > 0.01 and CI overlap."""
    obj = panel(algorithm, "object")["completion"]
    fast = panel(algorithm, "vector-fast")["completion"]
    verdict = distributional_equivalence(obj, fast, alpha=0.01)
    assert verdict["ks_pass"], (
        f"{algorithm.value}: completion-time KS rejected equivalence "
        f"(D={verdict['d']:.4f}, p={verdict['p']:.4g})")
    assert verdict["ci_overlap"], (
        f"{algorithm.value}: completion-time CIs disjoint "
        f"({verdict['ci_a']} vs {verdict['ci_b']})")


@pytest.mark.parametrize("algorithm", ALGORITHMS,
                         ids=[a.value for a in ALGORITHMS])
def test_final_fairness_cis_overlap(algorithm):
    """Per-seed mean ``u_i/d_i``: the engines' 95% CIs must meet."""
    obj = panel(algorithm, "object")["fairness"]
    fast = panel(algorithm, "vector-fast")["fairness"]
    ci_obj = confidence_interval(obj)
    ci_fast = confidence_interval(fast)
    assert intervals_overlap(ci_obj, ci_fast), (
        f"{algorithm.value}: fairness CIs disjoint "
        f"({ci_obj} vs {ci_fast})")


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else math.inf


def test_fast_lineage_preserves_paper_orderings():
    """EXPERIMENTS.md's qualitative results hold on the fast lineage.

    Three orderings with wide empirical margins at this scale:

    * E9: pure reciprocity deadlocks — whoever completes at all does
      so an order of magnitude later than under any other mechanism;
    * altruism yields the fastest clean-run downloads (E7/E11);
    * E12: T-Chain's final ``u/d`` sits closest to 1 of all
      mechanisms.
    """
    mean_mc = {a: _mean(panel(a, "vector-fast")["mean_completion"])
               for a in ALGORITHMS}
    others = [a for a in ALGORITHMS if a is not Algorithm.RECIPROCITY]
    assert all(mean_mc[Algorithm.RECIPROCITY] > 3 * mean_mc[a]
               for a in others), mean_mc
    assert all(mean_mc[Algorithm.ALTRUISM] < mean_mc[a]
               for a in ALGORITHMS if a is not Algorithm.ALTRUISM), mean_mc

    unfairness = {a: abs(_mean(panel(a, "vector-fast")["fairness"]) - 1.0)
                  for a in ALGORITHMS if a is not Algorithm.RECIPROCITY}
    tchain = unfairness.pop(Algorithm.TCHAIN)
    assert all(tchain < u for u in unfairness.values()), (tchain, unfairness)


class TestLineageTagging:
    def test_metrics_tag_per_backend(self):
        for backend, expected in (("object", "parity-v1"),
                                  ("vector", "parity-v1"),
                                  ("vector-fast", "fast-v1")):
            config = parity_config(Algorithm.TCHAIN, 5, backend)
            metrics = run_simulation(config).metrics
            assert metrics.digest_lineage == expected, backend

    def test_fingerprint_separates_lineages(self):
        """The sweep identity includes the lineage, so fast results
        can never be journaled or cached under a parity identity —
        even though ``repr(config)`` deliberately excludes the backend
        (byte-parity backends *should* share identities)."""
        base = parity_config(Algorithm.TCHAIN, 5)
        fast = parity_config(Algorithm.TCHAIN, 5, "vector-fast")
        vec = parity_config(Algorithm.TCHAIN, 5, "vector")
        assert _config_fingerprint(base) == _config_fingerprint(vec)
        assert _config_fingerprint(fast) != _config_fingerprint(base)
        assert "fast-v1" in _config_fingerprint(fast)

    def test_journal_and_cache_records_carry_lineage(self, tmp_path):
        config = parity_config(Algorithm.FAIRTORRENT, 0, "vector-fast")
        journal = str(tmp_path / "sweep.jsonl")
        cache_dir = str(tmp_path / "cache")
        result = run_resilient_sweep(config, seeds=[1, 2], jobs=1,
                                     journal_path=journal,
                                     cache_dir=cache_dir,
                                     start_method="fork")
        assert result.n_failed == 0
        for outcome in result.outcomes:
            assert outcome.digest_lineage == "fast-v1"
            assert outcome.canonical_dict()["digest_lineage"] == "fast-v1"

        with open(journal, "r", encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        replicates = [r for r in records if r["kind"] == "replicate"]
        assert len(replicates) == 2
        assert all(r["digest_lineage"] == "fast-v1" for r in replicates)

        cache = ResultCache(cache_dir)
        fingerprint = _config_fingerprint(config)
        for seed in (1, 2):
            entry = cache.get(fingerprint, seed)
            assert entry is not None
            assert entry["digest_lineage"] == "fast-v1"

        # A parity-lineage sweep of the same config must *miss* this
        # cache entirely: different fingerprint, different identity.
        parity = parity_config(Algorithm.FAIRTORRENT, 0, "vector")
        assert ResultCache(cache_dir).get(
            _config_fingerprint(parity), 1) is None

    def test_parity_backends_journal_parity_lineage(self, tmp_path):
        config = parity_config(Algorithm.FAIRTORRENT, 0, "vector")
        journal = str(tmp_path / "sweep.jsonl")
        result = run_resilient_sweep(config, seeds=[1], jobs=1,
                                     journal_path=journal,
                                     start_method="fork")
        assert result.n_failed == 0
        assert result.outcomes[0].digest_lineage == "parity-v1"
        with open(journal, "r", encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        replicate = next(r for r in records if r["kind"] == "replicate")
        assert replicate["digest_lineage"] == "parity-v1"
