"""Tests for seed lingering and structured view topologies."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenarios import smoke_scale
from repro.names import Algorithm
from repro.sim import SimulationConfig, run_simulation
from repro.sim.runner import Simulation


class TestSeedLingering:
    def test_lingering_speeds_the_tail(self):
        """Completed users that keep seeding (gamma < 1) shorten the
        remaining users' downloads — the fluid model's seed effect."""
        base = smoke_scale(Algorithm.BITTORRENT, seed=14)
        immediate = run_simulation(base).metrics
        lingering = run_simulation(
            replace(base, seed_linger_rate=0.2)).metrics
        assert (lingering.mean_completion_time()
                < immediate.mean_completion_time())

    def test_lingerers_upload_after_completion(self):
        base = replace(smoke_scale(Algorithm.ALTRUISM, seed=15),
                       seed_linger_rate=0.1)
        metrics = run_simulation(base).metrics
        over_uploaders = [p for p in metrics.peers
                          if p.uploaded > p.downloaded * 1.5]
        assert over_uploaders  # someone kept giving after finishing

    def test_run_still_terminates(self):
        base = replace(smoke_scale(Algorithm.ALTRUISM, seed=15),
                       seed_linger_rate=0.05)
        metrics = run_simulation(base).metrics
        assert metrics.completion_fraction() == pytest.approx(1.0)
        assert metrics.rounds_run < base.max_rounds

    def test_conservation_holds(self):
        base = replace(smoke_scale(Algorithm.TCHAIN, seed=15),
                       seed_linger_rate=0.3)
        assert run_simulation(base).conservation_holds()

    def test_rate_validated(self):
        with pytest.raises(ConfigurationError):
            replace(smoke_scale(Algorithm.ALTRUISM), seed_linger_rate=0.0)
        with pytest.raises(ConfigurationError):
            replace(smoke_scale(Algorithm.ALTRUISM), seed_linger_rate=1.5)


class TestViewTopologies:
    @pytest.mark.parametrize("topology", ["ring", "smallworld"])
    def test_swarm_completes(self, topology):
        config = replace(smoke_scale(Algorithm.BITTORRENT, seed=14),
                         view_topology=topology)
        metrics = run_simulation(config).metrics
        assert metrics.completion_fraction() == pytest.approx(1.0)

    def test_ring_views_bounded_by_degree(self):
        config = replace(
            SimulationConfig(Algorithm.ALTRUISM, n_users=30, n_pieces=8,
                             neighbor_count=4, flash_crowd_duration=0.0,
                             seed=3),
            view_topology="ring")
        sim = Simulation(config)
        sim.engine.run_until(0.0)  # arrivals only
        for peer in sim.swarm.active_non_seeders():
            user_neighbors = [pid for pid in sim.swarm.neighbors(peer.peer_id)
                              if pid not in sim.swarm.seeder_ids]
            # Ring lattice degree 4 (the seeder is extra: large view).
            assert len(user_neighbors) == 4

    def test_smallworld_differs_from_ring(self):
        def views(topology):
            config = replace(
                SimulationConfig(Algorithm.ALTRUISM, n_users=40, n_pieces=8,
                                 neighbor_count=6, flash_crowd_duration=0.0,
                                 seed=3),
                view_topology=topology)
            sim = Simulation(config)
            sim.engine.run_until(0.0)
            return {p.peer_id: tuple(sim.swarm.neighbors(p.peer_id))
                    for p in sim.swarm.active_non_seeders()}

        assert views("ring") != views("smallworld")

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(smoke_scale(Algorithm.ALTRUISM), view_topology="torus")

    def test_orderings_survive_ring_topology(self):
        """Robustness: altruism still beats BitTorrent on a ring."""
        def mean_time(algorithm):
            config = replace(smoke_scale(algorithm, seed=16),
                             view_topology="ring")
            return run_simulation(config).metrics.mean_completion_time()

        assert mean_time(Algorithm.ALTRUISM) < mean_time(Algorithm.BITTORRENT)
