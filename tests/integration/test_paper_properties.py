"""The paper's qualitative experimental claims, at test scale.

These are the Section V findings that DESIGN.md commits to reproduce
in *shape*. Each test runs the relevant sweep at a reduced scale
(120 users, 32 pieces) with a fixed seed; the benchmark harness
re-checks the same claims at the default 200-user scale.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.scenarios import run_all_algorithms
from repro.names import Algorithm
from repro.sim import SimulationConfig


def scenario(seed: int = 29) -> SimulationConfig:
    return SimulationConfig(
        algorithm=Algorithm.TCHAIN, n_users=120, n_pieces=32,
        seeder_capacity=3.0, flash_crowd_duration=10.0,
        neighbor_count=30, max_rounds=400, seed=seed)


@pytest.fixture(scope="module")
def compliant_runs():
    """Figure 4: all users compliant."""
    return run_all_algorithms(scenario())


@pytest.fixture(scope="module")
def freeriding_runs():
    """Figure 5: 20% free-riders, targeted attacks."""
    return run_all_algorithms(scenario(), freerider_fraction=0.2)


@pytest.fixture(scope="module")
def largeview_runs():
    """Figure 6: Figure 5 plus the large-view exploit."""
    return run_all_algorithms(scenario(), freerider_fraction=0.2,
                              large_view=True)


class TestFigure4Efficiency:
    def test_altruism_fastest(self, compliant_runs):
        times = {a: r.metrics.mean_completion_time()
                 for a, r in compliant_runs.items()}
        finite = {a: t for a, t in times.items() if math.isfinite(t)}
        assert min(finite, key=finite.get) is Algorithm.ALTRUISM

    def test_reciprocity_never_completes_meaningfully(self, compliant_runs):
        metrics = compliant_runs[Algorithm.RECIPROCITY].metrics
        assert metrics.completion_fraction() < 0.2
        assert metrics.peer_uploaded == 0

    def test_hybrids_comparable(self, compliant_runs):
        """T-Chain, BitTorrent, FairTorrent within ~50% of each other."""
        times = [compliant_runs[a].metrics.mean_completion_time()
                 for a in (Algorithm.TCHAIN, Algorithm.BITTORRENT,
                           Algorithm.FAIRTORRENT)]
        assert max(times) / min(times) < 1.6

    def test_everyone_else_completes(self, compliant_runs):
        for algorithm, run in compliant_runs.items():
            if algorithm is Algorithm.RECIPROCITY:
                continue
            assert run.metrics.completion_fraction() > 0.95, algorithm


class TestFigure4Fairness:
    def test_fair_hybrids_approach_one(self, compliant_runs):
        """Fig. 4b: T-Chain/FairTorrent/BitTorrent stabilise near 1."""
        for algorithm in (Algorithm.TCHAIN, Algorithm.FAIRTORRENT,
                          Algorithm.BITTORRENT):
            fairness = compliant_runs[algorithm].metrics.final_fairness()
            assert fairness == pytest.approx(1.0, abs=0.1), algorithm

    def test_altruism_least_fair_in_flight(self, compliant_runs):
        """Mid-run d/u dispersion: altruism exceeds the fair hybrids."""
        def midrun(algorithm):
            m = compliant_runs[algorithm].metrics
            value = m.mean_fairness_between(10, 0.8 * m.rounds_run, "du")
            return abs(value - 1.0) if value is not None else 0.0

        assert midrun(Algorithm.ALTRUISM) > midrun(Algorithm.TCHAIN)


class TestFigure4Bootstrapping:
    def test_paper_ordering(self, compliant_runs):
        boot = {a: r.metrics.mean_bootstrap_time()
                for a, r in compliant_runs.items()}
        fast = (Algorithm.ALTRUISM, Algorithm.FAIRTORRENT, Algorithm.TCHAIN)
        # The three fast bootstrappers beat BitTorrent, which beats
        # reputation; reciprocity is slowest (Fig. 4c / Prop. 4).
        for algorithm in fast:
            assert boot[algorithm] < boot[Algorithm.BITTORRENT], algorithm
        assert boot[Algorithm.BITTORRENT] < boot[Algorithm.REPUTATION]
        assert boot[Algorithm.REPUTATION] < boot[Algorithm.RECIPROCITY]


class TestFigure5FreeRiding:
    def test_susceptibility_ordering(self, freeriding_runs):
        """Fig. 5a: altruism > FairTorrent > BitTorrent > reputation >
        T-Chain ~ reciprocity ~ 0."""
        susc = {a: r.metrics.susceptibility()
                for a, r in freeriding_runs.items()}
        assert susc[Algorithm.RECIPROCITY] == 0.0
        assert susc[Algorithm.TCHAIN] < 0.05
        assert susc[Algorithm.ALTRUISM] > susc[Algorithm.FAIRTORRENT]
        assert susc[Algorithm.FAIRTORRENT] > susc[Algorithm.BITTORRENT]
        assert susc[Algorithm.BITTORRENT] > susc[Algorithm.TCHAIN]
        assert susc[Algorithm.REPUTATION] > susc[Algorithm.TCHAIN]

    def test_freeriding_slows_susceptible_algorithms(
            self, compliant_runs, freeriding_runs):
        """Fig. 5b vs 4a: efficiency degrades once free-riders eat
        bandwidth."""
        for algorithm in (Algorithm.ALTRUISM, Algorithm.FAIRTORRENT):
            clean = compliant_runs[algorithm].metrics.mean_completion_time()
            dirty = freeriding_runs[algorithm].metrics.mean_completion_time()
            assert dirty > clean

    def test_tchain_least_affected_hybrid(self, compliant_runs,
                                          freeriding_runs):
        def slowdown(algorithm):
            clean = compliant_runs[algorithm].metrics.mean_completion_time()
            dirty = freeriding_runs[algorithm].metrics.mean_completion_time()
            return dirty / clean

        assert slowdown(Algorithm.TCHAIN) <= slowdown(
            Algorithm.FAIRTORRENT) + 0.05

    def test_tchain_most_fair_under_attack(self, freeriding_runs):
        """Fig. 5c: T-Chain (and BitTorrent) stay the most fair."""
        def deviation(algorithm):
            return abs(freeriding_runs[algorithm].metrics.final_fairness()
                       - 1.0)

        assert deviation(Algorithm.TCHAIN) < deviation(Algorithm.ALTRUISM)
        assert deviation(Algorithm.TCHAIN) < deviation(Algorithm.FAIRTORRENT)


class TestFigure6LargeView:
    def test_bittorrent_and_reputation_roughly_double(
            self, freeriding_runs, largeview_runs):
        """Fig. 6a: the large-view exploit ~doubles what BitTorrent and
        the reputation system leak. At this reduced scale (views cover
        a quarter of the swarm already) the amplification is partial,
        so the test asserts a clear increase; the 200-user benchmark
        checks the ~2x factor."""
        for algorithm in (Algorithm.BITTORRENT, Algorithm.REPUTATION):
            base = freeriding_runs[algorithm].metrics.susceptibility()
            boosted = largeview_runs[algorithm].metrics.susceptibility()
            assert boosted > 1.2 * base, algorithm

    def test_tchain_still_near_zero(self, largeview_runs):
        assert largeview_runs[Algorithm.TCHAIN].metrics.susceptibility() < 0.06

    def test_tchain_beats_bittorrent_on_both_axes(self, largeview_runs):
        """Fig. 6b/6c: T-Chain visibly more efficient and fair than
        BitTorrent once the large-view exploit is active."""
        tchain = largeview_runs[Algorithm.TCHAIN].metrics
        bittorrent = largeview_runs[Algorithm.BITTORRENT].metrics
        assert tchain.mean_completion_time() < (
            bittorrent.mean_completion_time())
        assert abs(tchain.final_fairness() - 1.0) < abs(
            bittorrent.final_fairness() - 1.0)

    def test_reciprocity_immune(self, largeview_runs):
        assert largeview_runs[Algorithm.RECIPROCITY].metrics.susceptibility() == 0.0
