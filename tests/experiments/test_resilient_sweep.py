"""Tests for the crash-safe resilient sweep runner.

The fake tasks live at module level so they pickle into the worker
processes (the engine's ``spawn`` start method requires it); the
extractors run in the parent and may be lambdas.
"""

from __future__ import annotations

import json
import math
import os
import time

import pytest

from repro.experiments.replicates import (
    ReplicateOutcome,
    journal_digest,
    run_replicates,
    run_resilient_sweep,
)
from repro.experiments.scenarios import smoke_scale
from repro.names import Algorithm

SEEDS = (1, 2, 3)

# Extractors for the fake tasks below, whose "metrics" are plain floats.
VALUE = {"value": lambda m: m}


def _config():
    return smoke_scale(Algorithm.ALTRUISM)


# ---------------------------------------------------------------------
# Picklable fake replicate tasks
# ---------------------------------------------------------------------

def task_identity(config, seed):
    """Succeeds immediately; the metric is the seed itself."""
    return float(seed)


def task_crash_small_seeds(config, seed):
    """Crashes on the original seeds; succeeds once reseeded."""
    if seed < 1000:
        raise RuntimeError(f"boom at seed {seed}")
    return float(seed)


def task_always_crash(config, seed):
    raise RuntimeError("always boom")


def task_hang_on_seed_two(config, seed):
    if seed == 2:
        time.sleep(60.0)
    return float(seed)


def task_kill_worker_on_small_seeds(config, seed):
    """First attempt kills the worker process outright (as a segfault
    or OOM would); retries arrive with a large derived seed and pass."""
    if seed < 1_000_000:
        os._exit(9)
    return float(seed % 9973)


class TestHappyPath:
    def test_matches_run_replicates(self):
        config = _config()
        reference = run_replicates(config, SEEDS)
        sweep = run_resilient_sweep(config, SEEDS)
        assert set(sweep.metrics) == set(reference.metrics)
        for name in reference.metrics:
            assert sweep[name].values == reference[name].values
            assert sweep[name].mean == reference[name].mean
        assert sweep.n_failed == 0
        assert sweep.resumed == 0
        assert all(o.ok and o.attempts == 1 for o in sweep.outcomes)

    def test_custom_task_and_extractors(self):
        sweep = run_resilient_sweep(_config(), SEEDS, VALUE,
                                    task=task_identity)
        assert sweep["value"].values == (1.0, 2.0, 3.0)

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_resilient_sweep(_config(), ())

    def test_requires_positive_attempts(self):
        with pytest.raises(ValueError):
            run_resilient_sweep(_config(), SEEDS, max_attempts=0)


class TestRetryAndFailure:
    def test_crash_then_reseed_succeeds(self):
        sweep = run_resilient_sweep(_config(), SEEDS, VALUE,
                                    task=task_crash_small_seeds,
                                    max_attempts=2)
        assert sweep.n_failed == 0
        for outcome in sweep.outcomes:
            assert outcome.attempts == 2
            assert outcome.used_seed != outcome.seed  # reseeded
            assert outcome.values["value"] == float(outcome.used_seed)

    def test_reseed_is_deterministic(self):
        first = run_resilient_sweep(_config(), SEEDS, VALUE,
                                    task=task_crash_small_seeds,
                                    max_attempts=2)
        second = run_resilient_sweep(_config(), SEEDS, VALUE,
                                     task=task_crash_small_seeds,
                                     max_attempts=2)
        assert ([o.used_seed for o in first.outcomes]
                == [o.used_seed for o in second.outcomes])

    def test_persistent_crash_recorded_failed_not_fatal(self):
        sweep = run_resilient_sweep(_config(), SEEDS, VALUE,
                                    task=task_always_crash,
                                    max_attempts=2)
        assert sweep.n_failed == len(SEEDS)
        for outcome in sweep.outcomes:
            assert outcome.status == "failed"
            assert outcome.attempts == 2
            assert "always boom" in outcome.error
            assert outcome.values == {"value": None}
        summary = sweep["value"]
        assert math.isnan(summary.mean)
        assert summary.n_missing == len(SEEDS)

    @pytest.mark.slow
    def test_timeout_kills_and_records(self):
        sweep = run_resilient_sweep(_config(), (1, 2), VALUE,
                                    task=task_hang_on_seed_two,
                                    timeout=2.0, max_attempts=1)
        by_seed = {o.seed: o for o in sweep.outcomes}
        assert by_seed[1].ok
        assert by_seed[2].status == "failed"
        assert "timeout" in by_seed[2].error


class TestRetryBackoff:
    """Backoff shapes *when* retries run, never *what* they produce."""

    def test_backoff_invisible_in_digest(self, tmp_path):
        path_plain = str(tmp_path / "nobackoff.jsonl")
        path_delayed = str(tmp_path / "backoff.jsonl")
        plain = run_resilient_sweep(_config(), SEEDS, VALUE,
                                    task=task_crash_small_seeds,
                                    max_attempts=2, retry_backoff=0.0,
                                    journal_path=path_plain)
        delayed = run_resilient_sweep(_config(), SEEDS, VALUE,
                                      task=task_crash_small_seeds,
                                      max_attempts=2, retry_backoff=0.05,
                                      journal_path=path_delayed)
        assert plain.canonical_digest() == delayed.canonical_digest()
        assert journal_digest(path_plain) == journal_digest(path_delayed)

    def test_backoff_seconds_accounted(self):
        sweep = run_resilient_sweep(_config(), SEEDS, VALUE,
                                    task=task_crash_small_seeds,
                                    max_attempts=2, retry_backoff=0.05)
        assert sweep.telemetry["retry_backoff_s"] > 0.0

    def test_jitter_deterministic_and_bounded(self):
        from repro.experiments.replicates import (
            _config_fingerprint,
            _retry_delay_fn,
        )
        fingerprint = _config_fingerprint(_config())
        delay = _retry_delay_fn(fingerprint, 7, 0.25, 30.0)
        # Attempt 1 is not a retry and never waits.
        assert delay(1) == 0.0
        # Deterministic: same (fingerprint, seed, attempt) -> same delay.
        assert delay(2) == delay(2)
        # Exponential base with jitter in [0, 1): base*2^(k-2) .. 2x that.
        assert 0.25 <= delay(2) < 0.5
        assert 0.5 <= delay(3) < 1.0
        # The exponential term is capped (jitter may still ride on top).
        assert delay(50) <= 60.0
        # Different seeds jitter differently (with overwhelming odds).
        other = _retry_delay_fn(fingerprint, 8, 0.25, 30.0)
        assert delay(2) != other(2)

    def test_backoff_disabled_returns_no_delay_fn(self):
        from repro.experiments.replicates import _retry_delay_fn
        assert _retry_delay_fn("fp", 1, 0.0, 30.0) is None


class TestJournal:
    def test_journal_written_and_resumed(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        first = run_resilient_sweep(_config(), SEEDS, VALUE,
                                    task=task_identity, journal_path=path)
        assert first.resumed == 0
        second = run_resilient_sweep(_config(), SEEDS, VALUE,
                                     task=task_identity, journal_path=path)
        assert second.resumed == len(SEEDS)
        assert second["value"].values == first["value"].values
        assert second["value"].mean == first["value"].mean

    def test_kill_and_resume_identical_aggregates(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        reference = run_resilient_sweep(_config(), SEEDS, VALUE,
                                        task=task_identity)
        run_resilient_sweep(_config(), SEEDS, VALUE,
                            task=task_identity, journal_path=path)
        # Simulate a kill after the first replicate: truncate the
        # journal to its header plus one completed record.
        lines = open(path).read().splitlines()
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:2]) + "\n")
        resumed = run_resilient_sweep(_config(), SEEDS, VALUE,
                                      task=task_identity, journal_path=path)
        assert resumed.resumed == 1
        assert resumed["value"].values == reference["value"].values
        assert resumed["value"].mean == reference["value"].mean

    def test_torn_trailing_write_ignored(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        run_resilient_sweep(_config(), SEEDS, VALUE,
                            task=task_identity, journal_path=path)
        with open(path, "a") as handle:
            handle.write('{"kind": "replicate", "seed": 99, "va')  # torn
        resumed = run_resilient_sweep(_config(), SEEDS, VALUE,
                                      task=task_identity, journal_path=path)
        assert resumed.resumed == len(SEEDS)

    def test_config_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        run_resilient_sweep(_config(), SEEDS, VALUE,
                            task=task_identity, journal_path=path)
        other = smoke_scale(Algorithm.TCHAIN)
        with pytest.raises(ValueError, match="different configuration"):
            run_resilient_sweep(other, SEEDS, VALUE,
                                task=task_identity, journal_path=path)

    def test_metric_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        run_resilient_sweep(_config(), SEEDS, VALUE,
                            task=task_identity, journal_path=path)
        with pytest.raises(ValueError, match="different metrics"):
            run_resilient_sweep(_config(), SEEDS,
                                {"other": lambda m: m},
                                task=task_identity, journal_path=path)

    def test_failures_journaled_too(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        run_resilient_sweep(_config(), (1,), VALUE,
                            task=task_always_crash, max_attempts=1,
                            journal_path=path)
        records = [json.loads(line) for line in open(path)]
        replicate = [r for r in records if r["kind"] == "replicate"][0]
        assert replicate["status"] == "failed"
        # The failure is checkpointed: resuming does not retry it.
        resumed = run_resilient_sweep(_config(), (1,), VALUE,
                                      task=task_always_crash, max_attempts=1,
                                      journal_path=path)
        assert resumed.resumed == 1
        assert resumed.outcomes[0].status == "failed"


class TestParallelDeterminism:
    """The jobs-count must be invisible in everything deterministic."""

    def test_digests_identical_jobs1_vs_jobs4(self, tmp_path):
        path1 = str(tmp_path / "jobs1.jsonl")
        path4 = str(tmp_path / "jobs4.jsonl")
        serial = run_resilient_sweep(_config(), SEEDS, VALUE,
                                     task=task_identity, jobs=1,
                                     journal_path=path1)
        fanned = run_resilient_sweep(_config(), SEEDS, VALUE,
                                     task=task_identity, jobs=4,
                                     journal_path=path4)
        assert serial.canonical_digest() == fanned.canonical_digest()
        assert journal_digest(path1) == journal_digest(path4)
        assert serial["value"].values == fanned["value"].values
        # Telemetry legitimately differs (worker ids, timings) but the
        # journals' deterministic bytes do not.
        assert serial.telemetry["jobs"] == 1
        assert fanned.telemetry["jobs"] in (3, 4)  # capped at task count

    def test_digests_identical_with_retries(self, tmp_path):
        path1 = str(tmp_path / "jobs1.jsonl")
        path3 = str(tmp_path / "jobs3.jsonl")
        serial = run_resilient_sweep(_config(), SEEDS, VALUE,
                                     task=task_crash_small_seeds,
                                     max_attempts=2, jobs=1,
                                     journal_path=path1)
        fanned = run_resilient_sweep(_config(), SEEDS, VALUE,
                                     task=task_crash_small_seeds,
                                     max_attempts=2, jobs=3,
                                     journal_path=path3)
        assert serial.canonical_digest() == fanned.canonical_digest()
        assert journal_digest(path1) == journal_digest(path3)
        # The reseed depends on (config, seed, attempt) only, never on
        # scheduling, so both sweeps used the same derived seeds.
        assert ([o.used_seed for o in serial.outcomes]
                == [o.used_seed for o in fanned.outcomes])

    def test_interrupted_parallel_sweep_resumes_identically(self, tmp_path):
        reference_path = str(tmp_path / "reference.jsonl")
        reference = run_resilient_sweep(_config(), SEEDS, VALUE,
                                        task=task_identity, jobs=1,
                                        journal_path=reference_path)
        path = str(tmp_path / "interrupted.jsonl")
        run_resilient_sweep(_config(), SEEDS, VALUE,
                            task=task_identity, jobs=4, journal_path=path)
        # Simulate a kill mid-sweep: keep the header plus the first
        # completed replicate, losing everything after it.
        lines = open(path).read().splitlines()
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:2]) + "\n")
        resumed = run_resilient_sweep(_config(), SEEDS, VALUE,
                                      task=task_identity, jobs=4,
                                      journal_path=path)
        assert resumed.resumed == 1
        assert resumed.canonical_digest() == reference.canonical_digest()
        assert journal_digest(path) == journal_digest(reference_path)

    def test_worker_crash_retried_and_reseeded(self):
        sweep = run_resilient_sweep(_config(), SEEDS, VALUE,
                                    task=task_kill_worker_on_small_seeds,
                                    max_attempts=2, jobs=2)
        assert sweep.n_failed == 0
        for outcome in sweep.outcomes:
            assert outcome.attempts == 2
            assert outcome.used_seed != outcome.seed
            assert outcome.values["value"] == float(outcome.used_seed % 9973)
        assert sweep.telemetry["worker_crashes"] >= 3

    def test_timeout_does_not_stall_siblings(self):
        start = time.perf_counter()
        sweep = run_resilient_sweep(_config(), (1, 2, 3), VALUE,
                                    task=task_hang_on_seed_two,
                                    timeout=2.0, max_attempts=1, jobs=2)
        elapsed = time.perf_counter() - start
        by_seed = {o.seed: o for o in sweep.outcomes}
        assert by_seed[1].ok and by_seed[3].ok
        assert by_seed[2].status == "failed"
        assert "timeout" in by_seed[2].error
        # The hung replicate slept 60s; the sweep did not.
        assert elapsed < 30.0
        assert sweep.telemetry["timeouts"] == 1


class TestTelemetry:
    def test_outcomes_and_journal_carry_telemetry(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        sweep = run_resilient_sweep(_config(), SEEDS, VALUE,
                                    task=task_identity, journal_path=path)
        for outcome in sweep.outcomes:
            assert outcome.telemetry is not None
            assert {"worker", "wall_s", "queue_wait_s"} <= set(
                outcome.telemetry)
        records = [json.loads(line) for line in open(path)]
        replicates = [r for r in records if r["kind"] == "replicate"]
        assert all("telemetry" in r for r in replicates)
        summaries = [r for r in records if r["kind"] == "summary"]
        assert len(summaries) == 1
        engine = summaries[0]["telemetry"]
        assert {"jobs", "wall_s", "utilization",
                "workers_spawned"} <= set(engine)

    def test_sweep_result_exposes_engine_summary(self):
        sweep = run_resilient_sweep(_config(), (1, 2), VALUE,
                                    task=task_identity, jobs=2)
        assert sweep.telemetry["tasks_ok"] == 2
        assert sweep.telemetry["workers_spawned"] == 2
        assert 0.0 <= sweep.telemetry["utilization"] <= 1.0

    def test_resumed_outcomes_keep_journal_telemetry(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        run_resilient_sweep(_config(), SEEDS, VALUE,
                            task=task_identity, journal_path=path)
        resumed = run_resilient_sweep(_config(), SEEDS, VALUE,
                                      task=task_identity, journal_path=path)
        assert resumed.resumed == len(SEEDS)
        assert all(o.telemetry is not None for o in resumed.outcomes)


class TestOutcome:
    def test_ok_property(self):
        ok = ReplicateOutcome(1, 1, 1, "ok", None, {"v": 1.0})
        bad = ReplicateOutcome(1, 1, 3, "failed", "boom", {"v": None})
        assert ok.ok and not bad.ok

    def test_to_rows_includes_missing_count(self):
        sweep = run_resilient_sweep(_config(), (1, 2), VALUE,
                                    task=task_always_crash, max_attempts=1)
        rows = sweep.to_rows()
        assert rows[0]["n_missing"] == 2
        assert rows[0]["n"] == 2

    def test_lineage_defaults_to_parity_and_round_trips(self, tmp_path):
        outcome = ReplicateOutcome(1, 1, 1, "ok", None, {"v": 1.0})
        assert outcome.digest_lineage == "parity-v1"
        assert outcome.canonical_dict()["digest_lineage"] == "parity-v1"
        # Old journals predate the field: loading them must default to
        # the parity lineage, not crash or mislabel.
        path = str(tmp_path / "sweep.jsonl")
        sweep = run_resilient_sweep(_config(), (1,), VALUE,
                                    task=task_identity, journal_path=path)
        with open(path, "r", encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        stripped = []
        for record in records:
            record.pop("digest_lineage", None)
            stripped.append(json.dumps(record))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(stripped) + "\n")
        resumed = run_resilient_sweep(_config(), (1,), VALUE,
                                      task=task_identity,
                                      journal_path=path)
        assert resumed.resumed == 1
        assert resumed.outcomes[0].digest_lineage == "parity-v1"
        assert sweep.outcomes[0].digest_lineage == "parity-v1"

    def test_n_backend_downgraded_counts_telemetry_flags(self):
        plain = ReplicateOutcome(1, 1, 1, "ok", None, {"v": 1.0})
        flagged = ReplicateOutcome(2, 2, 1, "ok", None, {"v": 1.0},
                                   telemetry={"backend_downgraded": True})
        sweep = run_resilient_sweep(_config(), (1, 2), VALUE,
                                    task=task_identity)
        assert sweep.n_backend_downgraded == 0
        forged = type(sweep)(config=sweep.config, seeds=sweep.seeds,
                             outcomes=(plain, flagged),
                             metrics=sweep.metrics, resumed=0)
        assert forged.n_backend_downgraded == 1


class TestDegradedRuns:
    """Watchdog-degraded replicates flow through the sweep machinery."""

    @staticmethod
    def _starved_config(tmp_path):
        from repro.sim import FaultConfig

        config = smoke_scale(Algorithm.RECIPROCITY).with_faults(FaultConfig(
            seeder_outage_rate=0.95, seeder_outage_duration=500))
        return config.with_guards("cheap", watchdog_window=8,
                                  bundle_dir=str(tmp_path))

    def test_degraded_replicates_surface_in_outcomes(self, tmp_path):
        result = run_resilient_sweep(self._starved_config(tmp_path),
                                     seeds=(0, 1), jobs=1)
        assert result.n_failed == 0
        assert result.n_degraded == 2
        for outcome in result.outcomes:
            assert outcome.ok and outcome.degraded
            assert outcome.bundle_path is not None
            assert os.path.exists(outcome.bundle_path)

    def test_degraded_flag_journals_and_resumes(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        config = self._starved_config(tmp_path)
        first = run_resilient_sweep(config, seeds=(0, 1), jobs=1,
                                    journal_path=str(journal))
        records = [json.loads(line)
                   for line in journal.read_text().splitlines()]
        records = [r for r in records if "seed" in r]  # skip the header
        assert len(records) == 2
        assert all(r["degraded"] for r in records)
        assert all(r.get("bundle_path") for r in records)

        resumed = run_resilient_sweep(config, seeds=(0, 1), jobs=1,
                                      journal_path=str(journal))
        assert resumed.resumed == 2
        assert resumed.n_degraded == 2
        assert journal_digest(str(journal)) == journal_digest(str(journal))
        assert [o.bundle_path for o in resumed.outcomes] == \
            [o.bundle_path for o in first.outcomes]


class TestObsTelemetryChannel:
    """Per-worker observability payloads (repro.obs) ride home on the
    telemetry channel: journaled, digest-excluded, values untouched."""

    def _obs_config(self):
        return _config().with_obs(trace=True, sample_every=5, profile=True)

    def test_series_survive_worker_pipes(self, tmp_path):
        from repro.obs import SeriesStore
        path = str(tmp_path / "sweep.jsonl")
        sweep = run_resilient_sweep(self._obs_config(), (0, 1), jobs=2,
                                    journal_path=path)
        for outcome in sweep.outcomes:
            payload = outcome.telemetry["obs"]
            assert set(payload) == {"series", "profile", "trace"}
            store = SeriesStore.from_compact(payload["series"])
            assert len(store) > 0
            assert "active_peers" in store.names()
            assert payload["trace"]["retained"] > 0
            assert "engine.round" in payload["profile"]
        # The journal carries the payload too (inside telemetry).
        records = [json.loads(line) for line in open(path)]
        replicates = [r for r in records if r.get("kind") == "replicate"]
        assert all("obs" in r["telemetry"] for r in replicates)

    def test_instrumentation_leaves_sweep_values_unchanged(self):
        plain = run_resilient_sweep(_config(), (0, 1), jobs=1)
        traced = run_resilient_sweep(self._obs_config(), (0, 1), jobs=1)
        assert [o.values for o in traced.outcomes] == \
            [o.values for o in plain.outcomes]

    def test_obs_sweep_digest_independent_of_jobs(self):
        config = self._obs_config()
        serial = run_resilient_sweep(config, (0, 1, 2), jobs=1)
        parallel = run_resilient_sweep(config, (0, 1, 2), jobs=3)
        assert serial.canonical_digest() == parallel.canonical_digest()
