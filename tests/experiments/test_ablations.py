"""Tests for the ablation sweep helpers (small scale, shape checks)."""

from __future__ import annotations

import pytest

from repro.experiments import ablations
from repro.experiments.scenarios import smoke_scale
from repro.names import Algorithm


@pytest.fixture(scope="module")
def base():
    return smoke_scale(seed=6)


class TestSweepShapes:
    def test_alpha_bt_rows(self, base):
        rows = ablations.alpha_bt_sweep(base, [0.1, 0.3])
        assert [r["alpha_bt"] for r in rows] == [0.1, 0.3]
        for row in rows:
            assert 0.0 <= row["susceptibility"] <= 1.0
            assert row["completion_fraction"] > 0.9

    def test_alpha_r_rows(self, base):
        rows = ablations.alpha_r_sweep(base, [0.1])
        assert rows[0]["alpha_r"] == 0.1
        assert "mean_bootstrap_time" in rows[0]

    def test_freerider_fraction_rows(self, base):
        rows = ablations.freerider_fraction_sweep(
            base, Algorithm.ALTRUISM, [0.0, 0.2])
        assert rows[0]["susceptibility"] == 0.0
        assert rows[1]["susceptibility"] > 0.0

    def test_seeder_capacity_rows(self, base):
        rows = ablations.seeder_capacity_sweep(
            base, Algorithm.ALTRUISM, [1.0, 8.0])
        assert [r["seeder_capacity"] for r in rows] == [1.0, 8.0]
        # More seeder bandwidth never slows completion down materially.
        assert (rows[1]["mean_completion_time"]
                <= rows[0]["mean_completion_time"] * 1.1)

    def test_whitewash_none_encoded_as_inf(self, base):
        rows = ablations.whitewash_interval_sweep(base, [None])
        assert rows[0]["whitewash_interval"] == float("inf")

    def test_tchain_patience_rows(self, base):
        rows = ablations.tchain_patience_sweep(base, [2])
        assert rows[0]["patience"] == 2
        assert rows[0]["susceptibility"] < 0.1


class TestDirections:
    def test_alpha_bt_direction(self, base):
        """More optimistic bandwidth -> more exposure, faster bootstrap."""
        rows = ablations.alpha_bt_sweep(base, [0.05, 0.5])
        assert rows[1]["susceptibility"] > rows[0]["susceptibility"]
        assert (rows[1]["mean_bootstrap_time"]
                < rows[0]["mean_bootstrap_time"])

    def test_freerider_growth_direction(self, base):
        rows = ablations.freerider_fraction_sweep(
            base, Algorithm.ALTRUISM, [0.1, 0.3])
        assert rows[1]["susceptibility"] > rows[0]["susceptibility"]


class TestPieceSelection:
    def test_both_policies_complete(self, base):
        rows = ablations.piece_selection_sweep(base, Algorithm.TCHAIN)
        assert [r["piece_selection"] for r in rows] == ["rarest", "random"]
        for row in rows:
            assert row["completion_fraction"] > 0.95

    def test_policy_validated(self, base):
        from dataclasses import replace
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            replace(base, piece_selection="alphabetical")
