"""Tests for the analytic table/figure regenerators."""

from __future__ import annotations

import pytest

from repro.experiments import tables
from repro.names import ALL_ALGORITHMS, Algorithm


class TestTable1:
    def test_rows_cover_all_algorithms(self):
        rows = tables.table1_rows()
        assert [r["algorithm"] for r in rows] == [
            a.display_name for a in ALL_ALGORITHMS]

    def test_fair_rows_have_zero_F(self):
        rows = {r["algorithm"]: r for r in tables.table1_rows()}
        assert rows["T-Chain"]["fairness_F"] == pytest.approx(0.0)
        assert rows["FairTorrent"]["fairness_F"] == pytest.approx(0.0)
        assert rows["Altruism"]["fairness_F"] > 0.0

    def test_reciprocity_degenerate(self):
        rows = {r["algorithm"]: r for r in tables.table1_rows()}
        assert rows["Reciprocity"]["mean_upload"] == 0.0
        assert rows["Reciprocity"]["efficiency_E"] == float("inf")

    def test_text_rendering(self):
        text = tables.table1_text()
        assert "Table I" in text
        for algorithm in ALL_ALGORITHMS:
            assert algorithm.display_name in text


class TestTable2:
    def test_paper_percentages(self):
        rows = {r["algorithm"]: r for r in tables.table2_rows()}
        assert rows["Altruism"]["percent"] == pytest.approx(91.8, abs=0.1)
        assert rows["Reciprocity"]["percent"] == pytest.approx(0.1, abs=0.01)
        assert rows["BitTorrent"]["percent"] == pytest.approx(39.6, abs=0.1)

    def test_text_rendering(self):
        text = tables.table2_text()
        assert "Table II" in text
        assert "N=1000" in text


class TestTable3:
    def test_fraction_columns(self):
        rows = {r["algorithm"]: r for r in tables.table3_rows()}
        assert rows["Altruism"]["exploitable_fraction"] == pytest.approx(1.0)
        assert rows["T-Chain"]["exploitable"] == 0.0
        assert rows["Reciprocity"]["exploitable"] == 0.0
        assert rows["Altruism"]["collusion"] is None
        assert rows["Reputation"]["collusion"] == 1.0

    def test_text_shows_na(self):
        assert "n/a" in tables.table3_text()


class TestFigureRankings:
    def test_figure2(self):
        rankings = tables.figure2_rankings()
        assert rankings["efficiency"][0] is Algorithm.ALTRUISM
        assert rankings["efficiency"][-1] is Algorithm.RECIPROCITY
        assert set(rankings["fairness"][:2]) == {
            Algorithm.TCHAIN, Algorithm.FAIRTORRENT}

    def test_figure3_paper_order(self):
        result = tables.figure3_rankings(M=32, n_users=100)
        assert result["ranking"] == [
            Algorithm.ALTRUISM, Algorithm.TCHAIN, Algorithm.FAIRTORRENT,
            Algorithm.BITTORRENT, Algorithm.RECIPROCITY]

    def test_figure3_probabilities_ordered(self):
        result = tables.figure3_rankings(M=32, n_users=100)
        probs = result["probabilities"]
        assert probs[Algorithm.ALTRUISM] >= probs[Algorithm.TCHAIN]
        assert probs[Algorithm.TCHAIN] >= probs[Algorithm.BITTORRENT]
        assert probs[Algorithm.RECIPROCITY] == 0.0
