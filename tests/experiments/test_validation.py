"""Tests for cross-layer (model vs. simulator) validation helpers."""

from __future__ import annotations

import math
import random

import pytest

from repro.experiments import validation
from repro.experiments.scenarios import smoke_scale
from repro.names import Algorithm
from repro.sim import run_simulation
from repro.sim.metrics import MetricsCollector


def synthetic_metrics(series):
    """Build metrics with a hand-written bootstrap trajectory.

    ``series`` is a list of (arrived, bootstrapped) tuples.
    """
    collector = MetricsCollector()
    for t, (arrived, bootstrapped) in enumerate(series, start=1):
        collector.sample(time=float(t), active_peers=arrived,
                         arrived=arrived, population=100,
                         bootstrapped=bootstrapped, completed=0,
                         fairness_ud=None, fairness_du=None)
    return collector.finalize([], rounds_run=len(series))


class TestEmpiricalProbability:
    def test_hand_computed(self):
        metrics = synthetic_metrics([(10, 0), (10, 5), (10, 10)])
        rows = validation.empirical_bootstrap_probability(metrics)
        # Round 2: 5 of 10 waiting bootstrapped; round 3: 5 of 5.
        assert [r["p_b"] for r in rows] == [0.5, 1.0]
        assert [r["waiting"] for r in rows] == [10.0, 5.0]

    def test_midround_arrivals_counted_at_risk(self):
        # 5 arrive in round 2 and 3 of them bootstrap immediately.
        metrics = synthetic_metrics([(5, 5), (10, 8)])
        rows = validation.empirical_bootstrap_probability(metrics)
        assert rows == [{"time": 2.0, "waiting": 5.0, "p_b": 3 / 5}]

    def test_probability_never_exceeds_one(self):
        metrics = synthetic_metrics([(2, 0), (10, 10)])
        rows = validation.empirical_bootstrap_probability(metrics)
        assert all(0.0 <= r["p_b"] <= 1.0 for r in rows)

    def test_skips_rounds_with_nobody_waiting(self):
        metrics = synthetic_metrics([(10, 10), (10, 10)])
        assert validation.empirical_bootstrap_probability(metrics) == []

    def test_weighted_mean(self):
        metrics = synthetic_metrics([(10, 0), (10, 5), (10, 10)])
        # (0.5 * 10 + 1.0 * 5) / 15 = 2/3.
        assert validation.mean_empirical_bootstrap_probability(metrics) == (
            pytest.approx(2 / 3))

    def test_mean_none_when_never_waiting(self):
        metrics = synthetic_metrics([(5, 5)])
        assert validation.mean_empirical_bootstrap_probability(metrics) is None


class TestRankingAgreement:
    def test_identical_order(self):
        assert validation.ranking_agreement([1, 2, 3], [10, 20, 30]) == 1.0

    def test_reversed_order(self):
        assert validation.ranking_agreement([1, 2, 3], [3, 2, 1]) == 0.0

    def test_ties_half_credit(self):
        assert validation.ranking_agreement([1, 1], [1, 2]) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            validation.ranking_agreement([1], [1, 2])


class TestKolmogorovSmirnov:
    def test_identical_samples_zero_distance(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        assert validation.ks_statistic(sample, sample) == 0.0
        d, p = validation.ks_two_sample(sample, sample)
        assert d == 0.0 and p == 1.0

    def test_disjoint_samples_full_distance(self):
        assert validation.ks_statistic([1, 2, 3], [10, 20, 30]) == 1.0

    def test_hand_computed_distance(self):
        # CDF of a jumps to 1 at 2; CDF of b is still 0.5 there.
        assert validation.ks_statistic([1, 2], [1, 3]) == pytest.approx(0.5)

    def test_same_distribution_accepted(self):
        rng = random.Random(7)
        a = [rng.gauss(10.0, 2.0) for _ in range(400)]
        b = [rng.gauss(10.0, 2.0) for _ in range(400)]
        d, p = validation.ks_two_sample(a, b)
        assert p > 0.05, (d, p)

    def test_shifted_distribution_rejected(self):
        rng = random.Random(7)
        a = [rng.gauss(10.0, 2.0) for _ in range(400)]
        b = [rng.gauss(12.0, 2.0) for _ in range(400)]
        d, p = validation.ks_two_sample(a, b)
        assert p < 0.001, (d, p)

    def test_non_finite_values_dropped(self):
        a = [1.0, 2.0, math.inf, math.nan, 3.0]
        assert validation.ks_statistic(a, [1.0, 2.0, 3.0]) == 0.0

    def test_empty_after_filtering_raises(self):
        with pytest.raises(ValueError):
            validation.ks_statistic([math.inf, math.nan], [1.0])
        with pytest.raises(ValueError):
            validation.ks_statistic([1.0], [])

    def test_short_samples_are_forgiving(self):
        # With 3 points a side, even a visible shift should not reach
        # significance — the asymptotic tail must not blow up at tiny n.
        _, p = validation.ks_two_sample([1.0, 2.0, 3.0], [2.0, 3.0, 4.0])
        assert 0.0 <= p <= 1.0
        assert p > 0.05


class TestConfidenceInterval:
    def test_point_interval_for_single_value(self):
        assert validation.confidence_interval([5.0]) == (5.0, 5.0)

    def test_hand_computed_interval(self):
        lo, hi = validation.confidence_interval([1.0, 2.0, 3.0])
        # mean 2, sample std 1, half-width 1.96/sqrt(3).
        half = 1.959963984540054 / math.sqrt(3)
        assert lo == pytest.approx(2.0 - half)
        assert hi == pytest.approx(2.0 + half)

    def test_non_finite_dropped_and_empty_raises(self):
        assert validation.confidence_interval(
            [5.0, math.nan, math.inf]) == (5.0, 5.0)
        with pytest.raises(ValueError):
            validation.confidence_interval([math.nan])

    def test_overlap_logic(self):
        assert validation.intervals_overlap((0.0, 1.0), (1.0, 2.0))
        assert validation.intervals_overlap((0.0, 3.0), (1.0, 2.0))
        assert not validation.intervals_overlap((0.0, 1.0), (1.1, 2.0))


class TestDistributionalEquivalence:
    def test_same_distribution_passes(self):
        rng = random.Random(3)
        a = [rng.gauss(8.0, 1.5) for _ in range(200)]
        b = [rng.gauss(8.0, 1.5) for _ in range(200)]
        verdict = validation.distributional_equivalence(a, b)
        assert verdict["ks_pass"] and verdict["ci_overlap"]

    def test_shifted_distribution_fails_both_gates(self):
        rng = random.Random(3)
        a = [rng.gauss(8.0, 0.5) for _ in range(200)]
        b = [rng.gauss(10.0, 0.5) for _ in range(200)]
        verdict = validation.distributional_equivalence(a, b)
        assert not verdict["ks_pass"]
        assert not verdict["ci_overlap"]

    def test_verdict_reports_ingredients(self):
        verdict = validation.distributional_equivalence(
            [1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert verdict["d"] == 0.0
        assert verdict["p"] == 1.0
        assert verdict["ci_a"] == verdict["ci_b"]


class TestModelVsSimulation:
    def test_sim_probability_from_real_run(self):
        metrics = run_simulation(smoke_scale(Algorithm.ALTRUISM,
                                             seed=12)).metrics
        p = validation.mean_empirical_bootstrap_probability(metrics)
        assert p is not None and 0.0 < p <= 1.0

    def test_model_ranks_like_simulator(self):
        """The headline cross-layer check: Table II's model orders the
        mechanisms' bootstrap speeds the way the simulator does."""
        rows = validation.bootstrap_model_vs_simulation(smoke_scale(seed=12))
        measured = [r["measured_p_b"] for r in rows]
        predicted = [r["predicted_p_b"] for r in rows]
        assert validation.ranking_agreement(measured, predicted) >= 0.7
