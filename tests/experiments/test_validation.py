"""Tests for cross-layer (model vs. simulator) validation helpers."""

from __future__ import annotations

import pytest

from repro.experiments import validation
from repro.experiments.scenarios import smoke_scale
from repro.names import Algorithm
from repro.sim import run_simulation
from repro.sim.metrics import MetricsCollector


def synthetic_metrics(series):
    """Build metrics with a hand-written bootstrap trajectory.

    ``series`` is a list of (arrived, bootstrapped) tuples.
    """
    collector = MetricsCollector()
    for t, (arrived, bootstrapped) in enumerate(series, start=1):
        collector.sample(time=float(t), active_peers=arrived,
                         arrived=arrived, population=100,
                         bootstrapped=bootstrapped, completed=0,
                         fairness_ud=None, fairness_du=None)
    return collector.finalize([], rounds_run=len(series))


class TestEmpiricalProbability:
    def test_hand_computed(self):
        metrics = synthetic_metrics([(10, 0), (10, 5), (10, 10)])
        rows = validation.empirical_bootstrap_probability(metrics)
        # Round 2: 5 of 10 waiting bootstrapped; round 3: 5 of 5.
        assert [r["p_b"] for r in rows] == [0.5, 1.0]
        assert [r["waiting"] for r in rows] == [10.0, 5.0]

    def test_midround_arrivals_counted_at_risk(self):
        # 5 arrive in round 2 and 3 of them bootstrap immediately.
        metrics = synthetic_metrics([(5, 5), (10, 8)])
        rows = validation.empirical_bootstrap_probability(metrics)
        assert rows == [{"time": 2.0, "waiting": 5.0, "p_b": 3 / 5}]

    def test_probability_never_exceeds_one(self):
        metrics = synthetic_metrics([(2, 0), (10, 10)])
        rows = validation.empirical_bootstrap_probability(metrics)
        assert all(0.0 <= r["p_b"] <= 1.0 for r in rows)

    def test_skips_rounds_with_nobody_waiting(self):
        metrics = synthetic_metrics([(10, 10), (10, 10)])
        assert validation.empirical_bootstrap_probability(metrics) == []

    def test_weighted_mean(self):
        metrics = synthetic_metrics([(10, 0), (10, 5), (10, 10)])
        # (0.5 * 10 + 1.0 * 5) / 15 = 2/3.
        assert validation.mean_empirical_bootstrap_probability(metrics) == (
            pytest.approx(2 / 3))

    def test_mean_none_when_never_waiting(self):
        metrics = synthetic_metrics([(5, 5)])
        assert validation.mean_empirical_bootstrap_probability(metrics) is None


class TestRankingAgreement:
    def test_identical_order(self):
        assert validation.ranking_agreement([1, 2, 3], [10, 20, 30]) == 1.0

    def test_reversed_order(self):
        assert validation.ranking_agreement([1, 2, 3], [3, 2, 1]) == 0.0

    def test_ties_half_credit(self):
        assert validation.ranking_agreement([1, 1], [1, 2]) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            validation.ranking_agreement([1], [1, 2])


class TestModelVsSimulation:
    def test_sim_probability_from_real_run(self):
        metrics = run_simulation(smoke_scale(Algorithm.ALTRUISM,
                                             seed=12)).metrics
        p = validation.mean_empirical_bootstrap_probability(metrics)
        assert p is not None and 0.0 < p <= 1.0

    def test_model_ranks_like_simulator(self):
        """The headline cross-layer check: Table II's model orders the
        mechanisms' bootstrap speeds the way the simulator does."""
        rows = validation.bootstrap_model_vs_simulation(smoke_scale(seed=12))
        measured = [r["measured_p_b"] for r in rows]
        predicted = [r["predicted_p_b"] for r in rows]
        assert validation.ranking_agreement(measured, predicted) >= 0.7
