"""Tests for JSON/CSV export."""

from __future__ import annotations

import json

import pytest

from repro.experiments.export import (
    peers_table,
    result_to_json,
    rows_to_csv,
    samples_table,
    summary_dict,
)
from repro.experiments.scenarios import smoke_scale
from repro.names import Algorithm
from repro.sim import run_simulation


@pytest.fixture(scope="module")
def result():
    return run_simulation(smoke_scale(Algorithm.TCHAIN, seed=8))


@pytest.fixture(scope="module")
def stalled():
    # A run guaranteed to finish nobody: reciprocity users never
    # upload and 10 rounds of seeder spray cannot complete anyone.
    from dataclasses import replace
    config = replace(smoke_scale(Algorithm.RECIPROCITY, seed=8),
                     max_rounds=10)
    return run_simulation(config)


class TestSummary:
    def test_fields(self, result):
        summary = summary_dict(result)
        assert summary["algorithm"] == "tchain"
        assert summary["n_users"] == result.config.n_users
        assert summary["completion_fraction"] == pytest.approx(1.0)
        assert summary["rounds_run"] > 0
        assert summary["digest_lineage"] == "parity-v1"

    def test_infinities_become_none(self, stalled):
        summary = summary_dict(stalled)
        assert summary["mean_completion_time"] is None  # was inf


class TestTables:
    def test_peers_table_shape(self, result):
        rows = peers_table(result.metrics)
        assert len(rows) == result.config.n_users
        assert all(set(rows[0]) == set(r) for r in rows)
        assert all(r["downloaded"] <= result.config.n_pieces for r in rows)

    def test_samples_table_times_sorted(self, result):
        rows = samples_table(result.metrics)
        times = [r["time"] for r in rows]
        assert times == sorted(times)


class TestJsonCsv:
    def test_json_round_trip(self, result):
        payload = json.loads(result_to_json(result))
        assert set(payload) == {"summary", "peers", "samples"}
        assert payload["summary"]["algorithm"] == "tchain"
        assert len(payload["peers"]) == result.config.n_users

    def test_json_summary_only(self, result):
        payload = json.loads(result_to_json(result, include_series=False))
        assert set(payload) == {"summary"}

    def test_csv(self, result):
        text = rows_to_csv(peers_table(result.metrics))
        lines = text.strip().splitlines()
        assert lines[0].startswith("peer_id,")
        assert len(lines) == result.config.n_users + 1

    def test_csv_empty(self):
        assert rows_to_csv([]) == ""
