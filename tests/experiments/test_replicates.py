"""Tests for replicated-run aggregation."""

from __future__ import annotations

import math

import pytest

from repro.experiments.replicates import (
    HEADLINE_METRICS,
    run_replicates,
)
from repro.experiments.scenarios import smoke_scale
from repro.names import Algorithm


@pytest.fixture(scope="module")
def replicates():
    return run_replicates(smoke_scale(Algorithm.ALTRUISM), seeds=(1, 2, 3))


class TestRunReplicates:
    def test_all_headline_metrics_present(self, replicates):
        assert set(replicates.metrics) == set(HEADLINE_METRICS)

    def test_per_seed_values_kept(self, replicates):
        summary = replicates["mean_completion_time"]
        assert summary.n == 3
        assert len(set(summary.values)) > 1  # seeds actually vary

    def test_mean_within_value_range(self, replicates):
        summary = replicates["mean_completion_time"]
        assert min(summary.values) <= summary.mean <= max(summary.values)

    def test_ci_brackets_mean(self, replicates):
        summary = replicates["final_fairness"]
        assert summary.ci_low <= summary.mean <= summary.ci_high
        assert summary.std >= 0.0

    def test_to_rows(self, replicates):
        rows = replicates.to_rows()
        assert {r["metric"] for r in rows} == set(HEADLINE_METRICS)
        assert all(r["n"] == 3 for r in rows)

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_replicates(smoke_scale(Algorithm.ALTRUISM), seeds=())

    def test_custom_extractor(self):
        result = run_replicates(
            smoke_scale(Algorithm.ALTRUISM), seeds=(1, 2),
            extractors={"uploads": lambda m: float(m.total_uploaded)})
        assert set(result.metrics) == {"uploads"}
        assert result["uploads"].mean > 0

    def test_all_missing_values_summarised_as_nan(self):
        """Reciprocity never completes: every per-seed mean completion
        time is inf, so the aggregate is *missing* (nan), not a
        misleading "infinite mean" — and n_missing says why."""
        from dataclasses import replace
        config = replace(smoke_scale(Algorithm.RECIPROCITY), max_rounds=20)
        result = run_replicates(config, seeds=(1, 2))
        summary = result["mean_completion_time"]
        assert math.isnan(summary.mean)
        assert math.isnan(summary.std)
        assert math.isnan(summary.ci_low) and math.isnan(summary.ci_high)
        assert summary.n_missing == 2
        assert summary.n == 2  # raw values are still kept

    def test_partial_missing_counted_not_dropped_silently(self):
        from repro.experiments.replicates import _summarise
        summary = _summarise("x", [1.0, None, math.inf, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.n_missing == 2
        assert summary.n == 4

    def test_n_missing_in_rows(self, replicates):
        rows = replicates.to_rows()
        assert all("n_missing" in r for r in rows)
        assert all(r["n_missing"] == 0 for r in rows)

    def test_single_seed_zero_std(self):
        result = run_replicates(smoke_scale(Algorithm.ALTRUISM), seeds=(5,))
        summary = result["completion_fraction"]
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == summary.mean
