"""Tests for the persistent worker-pool execution engine.

Task functions live at module level so they pickle into worker
processes under the ``spawn`` start method; per-attempt argument
factories run in the parent and may be lambdas.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.experiments.executor import (
    RespawnStormError,
    TaskSpec,
    default_jobs,
    run_tasks,
)


# ---------------------------------------------------------------------
# Picklable worker tasks
# ---------------------------------------------------------------------

def square(x):
    return x * x


def exit_if_small(x):
    """Simulates a segfault/OOM: kills the worker process outright."""
    if x < 1000:
        os._exit(3)
    return x


def sleep_if_two(x):
    if x == 2:
        time.sleep(30.0)
    return float(x)


def boom(x):
    raise ValueError(f"bad {x}")


class TestBasics:
    def test_results_in_submission_order(self):
        specs = [TaskSpec(key=i, fn=square, args=(i,)) for i in range(6)]
        report = run_tasks(specs, jobs=2)
        assert [r.key for r in report.results] == list(range(6))
        assert [r.value for r in report.results] == [i * i for i in range(6)]
        assert all(r.ok and r.attempts == 1 for r in report.results)

    def test_on_result_fires_in_submission_order(self):
        seen = []
        specs = [TaskSpec(key=i, fn=square, args=(i,)) for i in range(8)]
        run_tasks(specs, jobs=3, on_result=lambda r: seen.append(r.key))
        assert seen == list(range(8))

    def test_empty_specs(self):
        report = run_tasks([], jobs=4)
        assert report.results == ()
        assert report.stats.workers_spawned == 0

    def test_workers_are_persistent(self):
        # Six tasks on two workers: no per-task process spawn.
        specs = [TaskSpec(key=i, fn=square, args=(i,)) for i in range(6)]
        report = run_tasks(specs, jobs=2)
        assert report.stats.workers_spawned == 2

    def test_no_leaked_children(self):
        specs = [TaskSpec(key=i, fn=square, args=(i,)) for i in range(3)]
        run_tasks(specs, jobs=2)
        assert multiprocessing.active_children() == []

    def test_validation(self):
        spec = TaskSpec(key=1, fn=square, args=(1,))
        with pytest.raises(ValueError):
            run_tasks([spec], jobs=0)
        with pytest.raises(ValueError):
            run_tasks([spec], recycle_after=0)
        with pytest.raises(ValueError):
            run_tasks([TaskSpec(key=1, fn=square, args=(1,),
                                max_attempts=0)])

    def test_default_jobs_at_least_one(self):
        assert default_jobs() >= 1


class TestFailureIsolation:
    def test_exception_recorded_not_raised(self):
        report = run_tasks([TaskSpec(key=1, fn=boom, args=(1,))], jobs=1)
        result = report.results[0]
        assert result.status == "failed"
        assert "ValueError: bad 1" in result.error
        assert result.value is None
        # The worker survived the exception: no crash recorded.
        assert report.stats.worker_crashes == 0

    def test_worker_death_retried_with_fresh_args(self):
        # First attempt os._exit()s the worker; the per-attempt args
        # factory hands the retry a value that succeeds.
        specs = [TaskSpec(key=i, fn=exit_if_small,
                          args=(lambda a, i=i: (i if a == 1 else i + 1000,)),
                          max_attempts=2)
                 for i in range(3)]
        report = run_tasks(specs, jobs=2)
        assert [r.status for r in report.results] == ["ok"] * 3
        assert [r.attempts for r in report.results] == [2, 2, 2]
        assert [r.value for r in report.results] == [1000, 1001, 1002]
        assert report.stats.worker_crashes == 3
        assert report.stats.retries == 3

    def test_worker_death_exhausts_attempts(self):
        report = run_tasks([TaskSpec(key=0, fn=exit_if_small, args=(0,),
                                     max_attempts=2)], jobs=1)
        result = report.results[0]
        assert result.status == "failed"
        assert "worker process died" in result.error
        assert result.attempts == 2
        assert report.stats.worker_crashes == 2

    def test_sibling_survives_neighbor_crash(self):
        specs = [TaskSpec(key=0, fn=exit_if_small, args=(0,)),
                 TaskSpec(key=1, fn=square, args=(7,))]
        report = run_tasks(specs, jobs=2)
        assert report.results[0].status == "failed"
        assert report.results[1].ok
        assert report.results[1].value == 49

    def test_timeout_kills_only_offender(self):
        specs = [TaskSpec(key=i, fn=sleep_if_two, args=(i,))
                 for i in (1, 2, 3)]
        start = time.perf_counter()
        report = run_tasks(specs, jobs=2, timeout=2.0)
        elapsed = time.perf_counter() - start
        by_key = {r.key: r for r in report.results}
        assert by_key[1].ok and by_key[3].ok
        assert by_key[2].status == "failed"
        assert "timeout after 2.0s" in by_key[2].error
        assert report.stats.timeouts == 1
        # The hung task slept 30s; siblings were not serialized behind it.
        assert elapsed < 20.0


class TestRecyclingAndTelemetry:
    def test_workers_recycled_after_k_tasks(self):
        specs = [TaskSpec(key=i, fn=square, args=(i,)) for i in range(5)]
        report = run_tasks(specs, jobs=1, recycle_after=2)
        assert [r.value for r in report.results] == [0, 1, 4, 9, 16]
        assert report.stats.workers_recycled == 2
        assert report.stats.workers_spawned == 3
        # Telemetry attributes tasks to the distinct worker incarnations.
        workers = {r.telemetry.worker for r in report.results}
        assert len(workers) == 3

    def test_recycling_disabled(self):
        specs = [TaskSpec(key=i, fn=square, args=(i,)) for i in range(5)]
        report = run_tasks(specs, jobs=1, recycle_after=None)
        assert report.stats.workers_recycled == 0
        assert report.stats.workers_spawned == 1

    def test_stats_accounting(self):
        specs = [TaskSpec(key=i, fn=square, args=(i,)) for i in range(4)]
        report = run_tasks(specs, jobs=2)
        stats = report.stats
        assert stats.tasks_ok == 4
        assert stats.tasks_failed == 0
        assert stats.wall_s > 0
        assert stats.busy_s >= 0
        assert 0.0 <= stats.utilization <= 1.0
        assert sum(stats.tasks_per_worker.values()) == 4
        as_dict = stats.as_dict()
        assert as_dict["jobs"] == 2
        assert as_dict["utilization"] == stats.utilization

    def test_task_telemetry_fields(self):
        report = run_tasks([TaskSpec(key=1, fn=square, args=(3,))], jobs=1)
        telemetry = report.results[0].telemetry
        assert telemetry.worker == 0
        assert telemetry.wall_s >= 0
        assert telemetry.queue_wait_s >= 0
        assert telemetry.attempts == 1
        assert telemetry.last_error is None
        assert telemetry.host is None
        assert set(telemetry.as_dict()) == {"worker", "wall_s",
                                            "queue_wait_s", "result_bytes",
                                            "attempts", "last_error",
                                            "host"}

    def test_telemetry_records_attempts_and_last_error(self):
        # A retried-then-succeeded task must be distinguishable in
        # journals/dashboards: the ok-message telemetry carries the
        # attempt count and the reason the earlier attempt failed.
        spec = TaskSpec(key=0, fn=exit_if_small,
                        args=(lambda a: (1 if a == 1 else 1001,)),
                        max_attempts=2)
        report = run_tasks([spec], jobs=1)
        result = report.results[0]
        assert result.ok
        assert result.telemetry.attempts == 2
        assert "worker process died" in result.telemetry.last_error

    def test_failed_telemetry_carries_final_error(self):
        spec = TaskSpec(key=0, fn=boom, args=(5,), max_attempts=2)
        report = run_tasks([spec], jobs=1)
        result = report.results[0]
        assert not result.ok
        assert result.telemetry.attempts == 2
        assert "bad 5" in result.telemetry.last_error

    def test_result_bytes_sized_in_worker(self):
        # The result pipe now reports the pickled payload size — the
        # cost of shipping metrics (and any obs payload riding on them)
        # home. Failed tasks have no result to size.
        report = run_tasks([TaskSpec(key=1, fn=square, args=(3,)),
                            TaskSpec(key=2, fn=boom, args=(2,))], jobs=1)
        ok, failed = report.results
        assert ok.telemetry.result_bytes is not None
        assert ok.telemetry.result_bytes > 0
        assert failed.telemetry.result_bytes is None


def exit_always(x):
    """Simulates a systematic child failure (e.g. a broken import)."""
    os._exit(7)


class TestRespawnStormBreaker:
    def test_storm_trips_breaker(self):
        # Every spawned worker dies before completing a single task;
        # without the breaker this would respawn until attempts ran out.
        specs = [TaskSpec(key=i, fn=exit_always, args=(i,), max_attempts=10)
                 for i in range(4)]
        with pytest.raises(RespawnStormError) as excinfo:
            run_tasks(specs, jobs=1, crash_storm_limit=3)
        exc = excinfo.value
        assert exc.deaths == 3
        assert "3 consecutive workers" in str(exc)
        assert exc.last_exitcode == 7

    def test_intermittent_crashes_do_not_trip(self):
        # Crashes interleaved with completed tasks: every success (and
        # every warm-worker death) resets the breaker, so two isolated
        # crashes never read as a storm even with the limit at 2.
        specs = []
        for i in range(2):
            specs.append(TaskSpec(
                key=(i, "crash"), fn=exit_if_small,
                args=(lambda a, i=i: (i if a == 1 else i + 1000,)),
                max_attempts=2))
            specs.append(TaskSpec(key=(i, "ok"), fn=square, args=(i,)))
        report = run_tasks(specs, jobs=1, crash_storm_limit=2)
        assert all(r.ok for r in report.results)
        assert report.stats.worker_crashes == 2

    def test_boundary_one_fewer_than_limit_does_not_trip(self):
        # Exactly limit-1 consecutive cold deaths followed by a success:
        # the breaker must stay closed — it trips at the limit, not
        # before it.
        spec = TaskSpec(key=0, fn=exit_if_small,
                        args=(lambda a: (0 if a <= 2 else 1000,)),
                        max_attempts=3)
        report = run_tasks([spec], jobs=1, crash_storm_limit=3)
        result = report.results[0]
        assert result.ok
        assert result.attempts == 3
        assert report.stats.worker_crashes == 2

    def test_boundary_exactly_limit_trips(self):
        # The same workload with the limit lowered by one: the second
        # cold death is now the limit-th and must raise.
        spec = TaskSpec(key=0, fn=exit_if_small,
                        args=(lambda a: (0 if a <= 2 else 1000,)),
                        max_attempts=3)
        with pytest.raises(RespawnStormError) as excinfo:
            run_tasks([spec], jobs=1, crash_storm_limit=2)
        assert excinfo.value.deaths == 2
        assert excinfo.value.last_exitcode == 3

    def test_timeout_kill_interleaved_with_crash_on_same_slot(self):
        # jobs=1: a deliberate timeout kill and a genuine crash land on
        # successive incarnations of the same worker slot. Only the
        # crash is a cold death — if the timeout kill counted too, the
        # breaker (limit 2) would trip here.
        specs = [
            TaskSpec(key="hang", fn=sleep_if_two,
                     args=(lambda a: (2 if a == 1 else 1,)),
                     max_attempts=2),
            TaskSpec(key="crash", fn=exit_if_small,
                     args=(lambda a: (0 if a == 1 else 1000,)),
                     max_attempts=2),
        ]
        report = run_tasks(specs, jobs=1, timeout=1.0, crash_storm_limit=2)
        by_key = {r.key: r for r in report.results}
        assert by_key["hang"].ok and by_key["hang"].attempts == 2
        assert by_key["crash"].ok and by_key["crash"].attempts == 2
        assert report.stats.timeouts == 1
        assert report.stats.worker_crashes == 1
        assert "timeout after 1.0s" in by_key["hang"].telemetry.last_error
        assert "worker process died" in by_key["crash"].telemetry.last_error

    def test_breaker_disabled_with_none(self):
        specs = [TaskSpec(key=0, fn=exit_always, args=(0,), max_attempts=3)]
        report = run_tasks(specs, jobs=1, crash_storm_limit=None)
        assert report.results[0].status == "failed"
        assert "worker process died" in report.results[0].error

    def test_breaker_limit_validated(self):
        with pytest.raises(ValueError):
            run_tasks([TaskSpec(key=0, fn=square, args=(0,))],
                      crash_storm_limit=0)


class TestRetryBackoff:
    def test_retry_delay_holds_failed_task_back(self):
        spec = TaskSpec(key=0, fn=exit_if_small,
                        args=(lambda a: (0 if a == 1 else 1000,)),
                        max_attempts=2,
                        retry_delay=lambda a: 0.3)
        start = time.perf_counter()
        report = run_tasks([spec], jobs=1)
        elapsed = time.perf_counter() - start
        result = report.results[0]
        assert result.ok and result.attempts == 2
        assert report.stats.retry_backoff_s == pytest.approx(0.3)
        assert elapsed >= 0.3

    def test_negative_delay_clamped_to_zero(self):
        spec = TaskSpec(key=0, fn=exit_if_small,
                        args=(lambda a: (0 if a == 1 else 1000,)),
                        max_attempts=2,
                        retry_delay=lambda a: -5.0)
        report = run_tasks([spec], jobs=1)
        assert report.results[0].ok
        assert report.stats.retry_backoff_s == 0.0

    def test_no_delay_by_default(self):
        spec = TaskSpec(key=0, fn=exit_if_small,
                        args=(lambda a: (0 if a == 1 else 1000,)),
                        max_attempts=2)
        report = run_tasks([spec], jobs=1)
        assert report.results[0].ok
        assert report.stats.retry_backoff_s == 0.0
        assert report.stats.as_dict()["retry_backoff_s"] == 0.0

    def test_siblings_drain_during_backoff(self):
        # The delay holds back only the failed task; the lone worker
        # keeps draining the queue meanwhile.
        specs = [TaskSpec(key="retry", fn=exit_if_small,
                          args=(lambda a: (0 if a == 1 else 1000,)),
                          max_attempts=2,
                          retry_delay=lambda a: 0.4)]
        specs += [TaskSpec(key=i, fn=square, args=(i,)) for i in range(3)]
        report = run_tasks(specs, jobs=1)
        assert all(r.ok for r in report.results)
        assert report.stats.retry_backoff_s == pytest.approx(0.4)
