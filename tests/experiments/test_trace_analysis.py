"""Tests for trace-based deficit analysis (the [7] bound, measured)."""

from __future__ import annotations

import math
from dataclasses import replace


from repro.experiments import trace_analysis as ta
from repro.experiments.scenarios import smoke_scale
from repro.names import Algorithm
from repro.sim import run_simulation
from repro.sim.metrics import TransferRecord


def record(uploader, target, t=0.0, piece=0):
    return TransferRecord(time=t, uploader_id=uploader, target_id=target,
                          piece_id=piece, kind="plain", usable=True)


class TestPairwiseAccounting:
    def test_upload_counts(self):
        transfers = [record(1, 2), record(1, 2), record(2, 1)]
        counts = ta.pairwise_upload_counts(transfers)
        assert counts == {(1, 2): 2, (2, 1): 1}

    def test_exclusion(self):
        transfers = [record(0, 2), record(2, 3)]
        counts = ta.pairwise_upload_counts(transfers, exclude={0})
        assert counts == {(2, 3): 1}

    def test_deficits_keyed_by_creditor(self):
        transfers = [record(1, 2)] * 3 + [record(2, 1)]
        deficits = ta.pairwise_deficits(transfers)
        assert deficits == {(1, 2): 2}

    def test_balanced_pair_zero(self):
        transfers = [record(1, 2), record(2, 1)]
        deficits = ta.pairwise_deficits(transfers)
        assert list(deficits.values()) == [0]

    def test_trajectory_monotone(self):
        transfers = ([record(1, 2, t=1.0)] * 2 + [record(2, 1, t=2.0)]
                     + [record(1, 2, t=3.0)] * 4)
        trajectory = ta.max_deficit_trajectory(transfers)
        values = [r["max_deficit"] for r in trajectory]
        assert values == sorted(values)
        assert ta.worst_pairwise_deficit(transfers) == 5

    def test_empty_trace(self):
        assert ta.worst_pairwise_deficit([]) == 0
        assert ta.max_deficit_trajectory([]) == []


class TestFairTorrentDeficitBound:
    """Measure Sherman et al.'s O(log N) claim in the simulator."""

    def run_traced(self, algorithm, seed=21):
        config = replace(smoke_scale(algorithm, seed=seed),
                         record_transfers=True)
        result = run_simulation(config)
        seeders = set(range(config.n_seeders))
        return ta.worst_pairwise_deficit(result.metrics.transfers,
                                         exclude=seeders), config

    def test_fairtorrent_bounded_by_log_n(self):
        worst, config = self.run_traced(Algorithm.FAIRTORRENT)
        assert worst <= 3.5 * math.log(config.n_users)

    def test_fairtorrent_tighter_than_altruism(self):
        """The deficit discipline is FairTorrent's whole design: its
        worst pairwise imbalance stays below random gifting's."""
        ft, _ = self.run_traced(Algorithm.FAIRTORRENT)
        alt, _ = self.run_traced(Algorithm.ALTRUISM)
        assert ft < alt
