"""Tests for scenario presets and sweeps."""

from __future__ import annotations

import pytest

from repro.experiments import scenarios
from repro.names import Algorithm
from repro.sim.config import AttackConfig


class TestPresets:
    def test_paper_scale_matches_section5(self):
        config = scenarios.paper_scale()
        assert config.n_users == 1000
        assert config.n_pieces == 512
        assert config.flash_crowd_duration == 10.0

    def test_default_scale_is_scaled_down(self):
        default = scenarios.default_scale()
        paper = scenarios.paper_scale()
        assert default.n_users < paper.n_users
        assert default.n_pieces < paper.n_pieces
        # Same swarm shape: flash crowd duration preserved.
        assert default.flash_crowd_duration == paper.flash_crowd_duration

    def test_smoke_scale_small(self):
        assert scenarios.smoke_scale().n_users <= 80

    def test_presets_accept_algorithm_and_seed(self):
        config = scenarios.default_scale(Algorithm.ALTRUISM, seed=9)
        assert config.algorithm is Algorithm.ALTRUISM
        assert config.seed == 9


class TestWithFreeriders:
    def test_targeted_attack_selected(self):
        config = scenarios.with_freeriders(
            scenarios.smoke_scale(Algorithm.TCHAIN))
        assert config.freerider_fraction == pytest.approx(0.2)
        assert config.attack.collusion

    def test_large_view_flag(self):
        config = scenarios.with_freeriders(
            scenarios.smoke_scale(Algorithm.BITTORRENT), large_view=True)
        assert config.attack.large_view

    def test_explicit_attack_override(self):
        attack = AttackConfig(false_praise=True)
        config = scenarios.with_freeriders(
            scenarios.smoke_scale(Algorithm.REPUTATION), attack=attack)
        assert config.attack.false_praise
        assert not config.attack.collusion

    def test_explicit_attack_with_large_view(self):
        config = scenarios.with_freeriders(
            scenarios.smoke_scale(Algorithm.REPUTATION),
            attack=AttackConfig(false_praise=True), large_view=True)
        assert config.attack.false_praise and config.attack.large_view


class TestRunAllAlgorithms:
    def test_sweep_covers_selection(self, smoke_config):
        results = scenarios.run_all_algorithms(
            smoke_config, algorithms=[Algorithm.ALTRUISM, Algorithm.TCHAIN])
        assert set(results) == {Algorithm.ALTRUISM, Algorithm.TCHAIN}
        for algorithm, result in results.items():
            assert result.algorithm is algorithm
            assert result.metrics.peers

    def test_sweep_retargets_attacks(self, smoke_config):
        results = scenarios.run_all_algorithms(
            smoke_config,
            algorithms=[Algorithm.TCHAIN, Algorithm.FAIRTORRENT],
            freerider_fraction=0.2)
        assert results[Algorithm.TCHAIN].config.attack.collusion
        assert results[Algorithm.FAIRTORRENT].config.attack.whitewash_interval


class TestParallelSweep:
    def test_parallel_matches_serial(self, smoke_config):
        serial = scenarios.run_all_algorithms(
            smoke_config, algorithms=[Algorithm.ALTRUISM, Algorithm.TCHAIN])
        parallel = scenarios.run_all_algorithms(
            smoke_config, algorithms=[Algorithm.ALTRUISM, Algorithm.TCHAIN],
            processes=2)
        for algorithm, result in serial.items():
            assert (parallel[algorithm].metrics.total_uploaded
                    == result.metrics.total_uploaded)
            assert (parallel[algorithm].metrics.completion_times()
                    == result.metrics.completion_times())
