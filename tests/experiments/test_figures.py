"""Smoke tests for the Figure 4-6 runners (small scale)."""

from __future__ import annotations

import pytest

from repro.experiments import figures
from repro.experiments.scenarios import smoke_scale
from repro.names import Algorithm


@pytest.fixture(scope="module")
def fig4():
    return figures.figure4(smoke_scale(seed=2),
                           algorithms=[Algorithm.ALTRUISM, Algorithm.TCHAIN])


class TestFigureResult:
    def test_series_per_algorithm(self, fig4):
        assert set(fig4.series) == {Algorithm.ALTRUISM, Algorithm.TCHAIN}
        for series in fig4.series.values():
            assert series.completion_cdf
            assert series.bootstrap_series
            assert series.mean_completion_time > 0

    def test_no_freeriders_in_figure4(self, fig4):
        for series in fig4.series.values():
            assert series.susceptibility == 0.0

    def test_text_rendering(self, fig4):
        text = fig4.to_text()
        assert "Figure 4" in text
        assert "T-Chain" in text
        assert "Altruism" in text

    def test_cdf_reaches_one(self, fig4):
        cdf = fig4.series[Algorithm.ALTRUISM].completion_cdf
        assert cdf[-1]["fraction"] == pytest.approx(1.0)


class TestFigure5And6:
    def test_figure5_has_susceptibility(self):
        fig = figures.figure5(smoke_scale(seed=3),
                              algorithms=[Algorithm.ALTRUISM])
        assert fig.series[Algorithm.ALTRUISM].susceptibility > 0.0

    def test_figure6_sets_large_view(self):
        fig = figures.figure6(smoke_scale(seed=3),
                              algorithms=[Algorithm.BITTORRENT])
        config = fig.results[Algorithm.BITTORRENT].config
        assert config.attack.large_view
        assert config.freerider_fraction == pytest.approx(0.2)
