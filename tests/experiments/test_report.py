"""Tests for the full reproduction report."""

from __future__ import annotations

from repro.experiments.report import full_report
from repro.experiments.scenarios import smoke_scale
from repro.names import ALL_ALGORITHMS


class TestFullReport:
    def test_tables_only(self):
        text = full_report(include_figures=False)
        assert "Table I" in text
        assert "Table II" in text
        assert "Table III" in text
        assert "Figure 2" in text
        assert "Figure 3" in text
        assert "Figure 4" not in text

    def test_all_algorithms_mentioned(self):
        text = full_report(include_figures=False)
        for algorithm in ALL_ALGORITHMS:
            assert algorithm.display_name in text

    def test_with_figures_smoke(self):
        text = full_report(smoke_scale(seed=4), include_figures=True)
        for name in ("Figure 4", "Figure 5", "Figure 6"):
            assert name in text
