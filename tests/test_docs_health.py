"""Tier-1 enforcement of the docs-health checks (tools/check_docs.py).

The documentation makes claims about the code — link targets, anchor
names, and executable examples. These tests make those claims part of
the test surface: a renamed heading, a moved document, or drifted
doctest output fails CI, not a reader.
"""

from __future__ import annotations

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py")
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


class TestCuratedDocs:
    def test_every_curated_document_exists(self):
        missing = [rel for rel in check_docs.DOC_PATHS
                   if not (REPO_ROOT / rel).exists()]
        assert not missing

    def test_observability_and_architecture_are_curated(self):
        assert "docs/ARCHITECTURE.md" in check_docs.DOC_PATHS
        assert "docs/OBSERVABILITY.md" in check_docs.DOC_PATHS

    def test_all_checks_pass(self):
        problems = check_docs.run_checks()
        assert problems == []

    def test_docs_contain_executable_examples(self):
        """At least one fenced doctest block must exist — the doctest
        half of the checker must never become a silent no-op."""
        blocks = 0
        for path in check_docs.doc_files():
            blocks += len(check_docs.doctest_blocks(
                path.read_text(encoding="utf-8")))
        assert blocks >= 2


class TestSlugRules:
    def test_basic_heading(self):
        assert check_docs.github_slug("The determinism contract") == \
            "the-determinism-contract"

    def test_punctuation_and_code_spans(self):
        assert check_docs.github_slug("Sweeps: what crosses the pipe") == \
            "sweeps-what-crosses-the-pipe"
        assert check_docs.github_slug("The `trace` subcommand") == \
            "the-trace-subcommand"

    def test_duplicate_headings_get_suffixes(self):
        slugs = check_docs.heading_slugs("# Same\n\n## Same\n")
        assert slugs == ["same", "same-1"]

    def test_headings_inside_code_fences_are_ignored(self):
        markdown = "# Real\n\n```console\n# not a heading\n```\n"
        assert check_docs.heading_slugs(markdown) == ["real"]


class TestNegativeCases:
    """The checker must actually fire — probe it with synthetic docs."""

    ANCHOR_DOC = REPO_ROOT / "docs" / "ARCHITECTURE.md"

    def test_broken_file_link_detected(self):
        problems = check_docs.check_links(
            REPO_ROOT / "README.md", "[gone](no-such-file.md)")
        assert len(problems) == 1
        assert "broken link" in problems[0]

    def test_broken_anchor_detected(self):
        problems = check_docs.check_links(
            REPO_ROOT / "README.md",
            "[x](docs/ARCHITECTURE.md#no-such-heading)")
        assert len(problems) == 1
        assert "names no heading" in problems[0]

    def test_valid_anchor_accepted(self):
        problems = check_docs.check_links(
            REPO_ROOT / "README.md",
            "[x](docs/ARCHITECTURE.md#the-determinism-contract)")
        assert problems == []

    def test_links_inside_code_fences_are_exempt(self):
        markdown = "```md\n[gone](no-such-file.md)\n```\n"
        assert check_docs.check_links(REPO_ROOT / "README.md",
                                      markdown) == []

    def test_external_links_are_not_fetched(self):
        markdown = "[p](https://ui.perfetto.dev) [m](mailto:a@b.c)"
        assert check_docs.check_links(REPO_ROOT / "README.md",
                                      markdown) == []

    def test_failing_doctest_detected(self):
        markdown = "```python\n>>> 1 + 1\n3\n```\n"
        problems = check_docs.check_doctests(REPO_ROOT / "README.md",
                                             markdown)
        assert len(problems) == 1
        assert "doctest block 0 failed" in problems[0]

    def test_plain_python_fences_are_not_doctested(self):
        markdown = "```python\nx = definitely_undefined\n```\n"
        assert check_docs.check_doctests(REPO_ROOT / "README.md",
                                         markdown) == []
